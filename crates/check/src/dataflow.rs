//! Phase 2b: dataflow-aware rules over the deterministic surface.
//!
//! Each rule scans the bodies of functions the call graph proved
//! reachable from a deterministic root ([`crate::callgraph`]). The
//! scanned set is over-approximate; each *diagnostic* still requires a
//! concrete hazard at the site:
//!
//! * `unordered-iteration-in-deterministic-path` — iterating a
//!   `HashMap`/`HashSet` in a way that lets the order escape (into a
//!   `Vec`, a `for` body, an `extend`, serialized output). Iterations
//!   that provably cannot carry order out are exempt: order-free chain
//!   terminals (`count`/`any`/`all`/`contains`/`is_empty`/`len`/
//!   `min`/`max`), `collect` into an unordered or self-ordering
//!   container, and a `collect` into a binding that the very next
//!   statement sorts.
//! * `unordered-float-reduction` — `sum`/`product`/`fold`/`reduce`
//!   folded over such an iteration: float addition is not associative,
//!   so the fold order must be pinned even though the result "looks"
//!   order-free.
//! * `nondeterministic-source-in-deterministic-path` — wall clocks,
//!   OS-entropy RNG seeding, thread identity, pointer-to-usize.
//! * `panic-in-deterministic-path` — `panic!`-family macros that are
//!   neither audit-gated (`audit_enabled` in the enclosing body) nor a
//!   structured-error re-raise (`Err(e) => panic!(..)`).
//! * `blocking-in-query-path` — lock acquisitions, blocking I/O, or
//!   snapshot rebuilds inside the `serve` crate's query handlers (the
//!   functions carrying a `// linklens-deterministic` marker): the
//!   bounded-latency serving contract requires handlers to score against
//!   a version-pinned snapshot with no shared mutable state.

use crate::callgraph::{masked, Surface};
use crate::rules::{ident_at, past_matching_paren, punct_at, Diagnostic};
use crate::symbols::{FnSym, ParsedFile};

const ITER_STARTS: &[&str] =
    &["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain"];
const SAFE_TERMINALS: &[&str] =
    &["count", "any", "all", "contains", "contains_key", "is_empty", "len", "min", "max"];
const FLOAT_REDUCERS: &[&str] = &["sum", "product", "fold", "reduce"];
const ORDERED_DESTS: &[&str] = &["HashMap", "HashSet", "BTreeMap", "BTreeSet"];
const PANICS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs every dataflow rule over the deterministic-surface functions of
/// one parsed file.
pub(crate) fn check_file(file: &ParsedFile, surf: &Surface, out: &mut Vec<Diagnostic>) {
    let mut diags = Vec::new();
    for f in &file.fns {
        if f.in_test {
            continue;
        }
        let Some(body) = f.body else { continue };
        // Query handlers in the serve crate are identified by their
        // deterministic-surface marker, not by name-reachability: the
        // marker is the serving contract's signature on the handler.
        if file.info.krate == "serve" && f.marked_deterministic {
            blocking_in_query_path(file, f, body, &mut diags);
        }
        let Some(origin) = surf.origin(&f.name) else { continue };
        unordered_iteration(file, body, origin, &mut diags);
        nondeterministic_source(file, body, origin, &mut diags);
        panic_in_path(file, f, body, origin, &mut diags);
    }
    // The for-loop and method-chain scans can both hit one site; a
    // function can also be reached from several files. One finding per
    // (rule, line) is enough.
    diags.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    out.extend(diags);
}

/// One parsed method-chain step: the method name and the index just past
/// its argument list.
fn chain_steps(tokens: &[crate::lexer::Token], mut j: usize) -> Vec<(String, usize)> {
    let mut steps = Vec::new();
    while punct_at(tokens, j, '.') {
        let Some(m) = ident_at(tokens, j + 1) else { break };
        let mut k = j + 2;
        // Turbofish: `collect::<Vec<_>>(…)`.
        if punct_at(tokens, k, ':') && punct_at(tokens, k + 1, ':') && punct_at(tokens, k + 2, '<')
        {
            let mut depth = 0i32;
            k += 2;
            while k < tokens.len() {
                match tokens[k].tok {
                    crate::lexer::Tok::Punct('<') => depth += 1,
                    crate::lexer::Tok::Punct('>') => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        if !punct_at(tokens, k, '(') {
            // Field access or a method reference — the chain as an
            // *iteration* ends here.
            break;
        }
        let past = past_matching_paren(tokens, k);
        steps.push((m.to_string(), past));
        j = past;
    }
    steps
}

/// Turbofish type arguments of the chain step ending at `past` (tokens
/// between the method name and its `(`), as idents.
fn turbofish_idents(tokens: &[crate::lexer::Token], method_idx: usize, past: usize) -> Vec<&str> {
    let mut out = Vec::new();
    for t in method_idx..past {
        if let Some(s) = ident_at(tokens, t) {
            out.push(s);
        }
    }
    out
}

/// Statement start: index of the token *after* the nearest preceding
/// `;`, `{`, or `}`.
fn stmt_start(tokens: &[crate::lexer::Token], from: usize) -> usize {
    let mut i = from;
    while i > 0 {
        if matches!(
            tokens[i - 1].tok,
            crate::lexer::Tok::Punct(';')
                | crate::lexer::Tok::Punct('{')
                | crate::lexer::Tok::Punct('}')
        ) {
            return i;
        }
        i -= 1;
    }
    0
}

/// Index of the `;` ending the statement containing `from` (scanning
/// forward at bracket depth relative to `from`), or `tokens.len()`.
fn stmt_end(tokens: &[crate::lexer::Token], from: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < tokens.len() {
        match tokens[i].tok {
            crate::lexer::Tok::Punct('(')
            | crate::lexer::Tok::Punct('[')
            | crate::lexer::Tok::Punct('{') => depth += 1,
            crate::lexer::Tok::Punct(')')
            | crate::lexer::Tok::Punct(']')
            | crate::lexer::Tok::Punct('}') => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            crate::lexer::Tok::Punct(';') if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

/// If the statement containing `site` is `let [mut] name [: Ty] = …`,
/// returns `(name, ascription idents)`.
fn let_binding(tokens: &[crate::lexer::Token], site: usize) -> Option<(String, Vec<String>)> {
    let s = stmt_start(tokens, site);
    let mut j = s;
    if ident_at(tokens, j) != Some("let") {
        return None;
    }
    j += 1;
    if ident_at(tokens, j) == Some("mut") {
        j += 1;
    }
    let name = ident_at(tokens, j)?.to_string();
    let mut ty = Vec::new();
    if punct_at(tokens, j + 1, ':') {
        let mut k = j + 2;
        while k < tokens.len() && !punct_at(tokens, k, '=') && !punct_at(tokens, k, ';') {
            if let Some(s) = ident_at(tokens, k) {
                ty.push(s.to_string());
            }
            k += 1;
        }
    }
    Some((name, ty))
}

/// True when the statement directly after `end` (a `;`) starts with
/// `name.sort…` — the collect-then-sort idiom that pins the order before
/// anything downstream can observe it.
fn next_stmt_sorts(tokens: &[crate::lexer::Token], end: usize, name: &str) -> bool {
    ident_at(tokens, end + 1) == Some(name)
        && punct_at(tokens, end + 2, '.')
        && ident_at(tokens, end + 3).is_some_and(|m| m.starts_with("sort"))
}

fn unordered_iteration(
    file: &ParsedFile,
    body: (usize, usize),
    origin: &str,
    out: &mut Vec<Diagnostic>,
) {
    let tokens = &file.lexed.tokens;
    let (open, end) = body;
    for i in open..end.min(tokens.len()) {
        if masked(file, i) {
            continue;
        }
        let Some(name) = ident_at(tokens, i) else { continue };

        // `for pat in <unordered>` — the loop body observes the order
        // directly, no chain analysis needed.
        if name == "for" {
            let mut j = i + 1;
            while j < end && ident_at(tokens, j) != Some("in") {
                j += 1;
            }
            let mut k = j + 1;
            while punct_at(tokens, k, '&') || ident_at(tokens, k) == Some("mut") {
                k += 1;
            }
            if let Some(recv) = ident_at(tokens, k) {
                if file.is_unordered(recv) {
                    out.push(Diagnostic::new(
                        "unordered-iteration-in-deterministic-path",
                        &file.info.path,
                        tokens[k].line,
                        format!(
                            "`for … in {recv}` iterates a HashMap/HashSet on the deterministic \
                             surface (via {origin}); use a BTreeMap/BTreeSet or iterate a sorted \
                             Vec instead"
                        ),
                    ));
                }
            }
            continue;
        }

        // `<unordered>.iter()…` method chains.
        if !file.is_unordered(name) || !punct_at(tokens, i + 1, '.') {
            continue;
        }
        let steps = chain_steps(tokens, i + 1);
        if !steps.iter().any(|(m, _)| ITER_STARTS.contains(&m.as_str())) {
            continue; // get/insert/len/… — not an iteration
        }
        let line = tokens[i].line;
        // A float (or otherwise order-sensitive) reduction anywhere in
        // the chain dominates: the fold order is the hazard.
        if let Some((m, _)) = steps.iter().find(|(m, _)| FLOAT_REDUCERS.contains(&m.as_str())) {
            out.push(Diagnostic::new(
                "unordered-float-reduction",
                &file.info.path,
                line,
                format!(
                    "`.{m}()` folds over `{name}` in HashMap/HashSet iteration order on the \
                     deterministic surface (via {origin}); collect and sort first, or keep the \
                     data in an ordered container"
                ),
            ));
            continue;
        }
        let (last, last_past) = steps.last().map(|(m, p)| (m.as_str(), *p)).unwrap_or(("", i));
        if SAFE_TERMINALS.contains(&last) {
            continue; // order cannot escape a count/any/all/…
        }
        if last == "collect" {
            // Destination named in the turbofish?
            let step_start = steps.len().checked_sub(2).map_or(i + 1, |k| steps[k].1);
            let tf = turbofish_idents(tokens, step_start, last_past);
            if tf.iter().any(|t| ORDERED_DESTS.contains(t)) {
                continue; // into an unordered or self-ordering container
            }
            // Destination named in the let ascription, or sorted by the
            // next statement?
            if let Some((bind, ty)) = let_binding(tokens, i) {
                if ty.iter().any(|t| ORDERED_DESTS.contains(&t.as_str())) {
                    continue;
                }
                let send = stmt_end(tokens, last_past);
                if next_stmt_sorts(tokens, send, &bind) {
                    continue; // collect-then-sort pins the order
                }
            }
        }
        out.push(Diagnostic::new(
            "unordered-iteration-in-deterministic-path",
            &file.info.path,
            line,
            format!(
                "iteration order of `{name}` (HashMap/HashSet) escapes on the deterministic \
                 surface (via {origin}); collect into an ordered container, sort the collected \
                 Vec in the next statement, or end the chain in an order-free terminal"
            ),
        ));
    }
}

fn nondeterministic_source(
    file: &ParsedFile,
    body: (usize, usize),
    origin: &str,
    out: &mut Vec<Diagnostic>,
) {
    let tokens = &file.lexed.tokens;
    let (open, end) = body;
    let path2 = |i: usize, a: &str, b: &str| {
        ident_at(tokens, i) == Some(a)
            && punct_at(tokens, i + 1, ':')
            && punct_at(tokens, i + 2, ':')
            && ident_at(tokens, i + 3) == Some(b)
    };
    for i in open..end.min(tokens.len()) {
        if masked(file, i) {
            continue;
        }
        let hit: Option<&str> = if path2(i, "Instant", "now") {
            Some("Instant::now")
        } else if path2(i, "SystemTime", "now") {
            Some("SystemTime::now")
        } else if ident_at(tokens, i) == Some("UNIX_EPOCH") {
            Some("UNIX_EPOCH")
        } else if ident_at(tokens, i) == Some("thread_rng") && punct_at(tokens, i + 1, '(') {
            Some("thread_rng()")
        } else if ident_at(tokens, i) == Some("from_entropy") && punct_at(tokens, i + 1, '(') {
            Some("from_entropy()")
        } else if path2(i, "thread", "current") {
            Some("thread::current")
        } else if ident_at(tokens, i) == Some("as_ptr")
            && punct_at(tokens, i + 1, '(')
            && (i + 2..stmt_end(tokens, i)).any(|k| {
                ident_at(tokens, k) == Some("as") && ident_at(tokens, k + 1) == Some("usize")
            })
        {
            Some("pointer-to-usize cast")
        } else {
            None
        };
        if let Some(src) = hit {
            out.push(Diagnostic::new(
                "nondeterministic-source-in-deterministic-path",
                &file.info.path,
                tokens[i].line,
                format!(
                    "{src} on the deterministic surface (via {origin}); inject seeds/clocks from \
                     the caller so reruns are bit-identical"
                ),
            ));
        }
    }
}

fn panic_in_path(
    file: &ParsedFile,
    f: &FnSym,
    body: (usize, usize),
    origin: &str,
    out: &mut Vec<Diagnostic>,
) {
    let tokens = &file.lexed.tokens;
    let (open, end) = body;
    // Audit-gated functions may panic: that is the sanctioned
    // InvariantViolation surface from the runtime audit layer.
    let audit_gated =
        (open..end.min(tokens.len())).any(|i| ident_at(tokens, i) == Some("audit_enabled"));
    if audit_gated {
        return;
    }
    for i in open..end.min(tokens.len()) {
        if masked(file, i) {
            continue;
        }
        let Some(name) = ident_at(tokens, i) else { continue };
        if !PANICS.contains(&name) || !punct_at(tokens, i + 1, '!') {
            continue;
        }
        // `Err(e) => panic!(..)` (with or without a block) re-raises a
        // structured error class — sanctioned.
        let mut k = i;
        if k > 0 && punct_at(tokens, k - 1, '{') {
            k -= 1;
        }
        let err_rearm = k >= 6
            && punct_at(tokens, k - 1, '>')
            && punct_at(tokens, k - 2, '=')
            && punct_at(tokens, k - 3, ')')
            && ident_at(tokens, k - 4).is_some()
            && punct_at(tokens, k - 5, '(')
            && ident_at(tokens, k - 6) == Some("Err");
        if err_rearm {
            continue;
        }
        out.push(Diagnostic::new(
            "panic-in-deterministic-path",
            &file.info.path,
            tokens[i].line,
            format!(
                "`{name}!` in `{}` on the deterministic surface (via {origin}) is neither \
                 audit-gated nor an Err re-raise; restructure so the state is unrepresentable \
                 or return a structured error",
                f.name
            ),
        ));
    }
}

/// Hazard classes for `blocking-in-query-path`. Method calls that acquire
/// or could block (`.lock()`, `.read()`, `.write()` cover both Mutex/
/// RwLock acquisition and blocking io::Read/Write), bare constructors of
/// lock types, blocking I/O entry points, output macros, and the offline
/// snapshot-rebuild surface.
const LOCK_METHODS: &[&str] = &["lock", "try_lock", "read", "write"];
const LOCK_TYPES: &[&str] = &["Mutex", "RwLock", "Condvar"];
const IO_CALLS: &[&str] = &["stdin", "stdout", "stderr", "read_to_string", "read_line", "flush"];
const IO_TYPES: &[&str] = &["File"];
const IO_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "write", "writeln", "dbg"];
const REBUILDS: &[&str] = &["SnapshotBuilder", "from_edges", "advance_to", "load_full", "publish"];

fn blocking_in_query_path(
    file: &ParsedFile,
    f: &FnSym,
    body: (usize, usize),
    out: &mut Vec<Diagnostic>,
) {
    let tokens = &file.lexed.tokens;
    let (open, end) = body;
    for i in open..end.min(tokens.len()) {
        if masked(file, i) {
            continue;
        }
        let Some(name) = ident_at(tokens, i) else { continue };
        let hazard: Option<(&str, String)> = if punct_at(tokens, i + 1, '!') {
            IO_MACROS.contains(&name).then(|| ("I/O", format!("`{name}!` writes to the console")))
        } else if i > 0 && punct_at(tokens, i - 1, '.') && punct_at(tokens, i + 1, '(') {
            if LOCK_METHODS.contains(&name) {
                Some((
                    "a lock acquisition (or blocking read/write)",
                    format!("`.{name}()` can block the handler behind ingest"),
                ))
            } else if IO_CALLS.contains(&name) {
                Some(("I/O", format!("`.{name}()` blocks on I/O")))
            } else if REBUILDS.contains(&name) {
                Some((
                    "a snapshot rebuild",
                    format!("`.{name}()` rebuilds state the versioned swap already provides"),
                ))
            } else {
                None
            }
        } else if LOCK_TYPES.contains(&name) {
            Some(("a lock acquisition", format!("`{name}` state inside the handler")))
        } else if IO_TYPES.contains(&name) || IO_CALLS.contains(&name) {
            Some(("I/O", format!("`{name}` blocks on I/O")))
        } else if (REBUILDS.contains(&name) && punct_at(tokens, i + 1, '('))
            || name == "SnapshotBuilder"
        {
            Some((
                "a snapshot rebuild",
                format!("`{name}` rebuilds state the versioned swap already provides"),
            ))
        } else {
            None
        };
        if let Some((class, detail)) = hazard {
            out.push(Diagnostic::new(
                "blocking-in-query-path",
                &file.info.path,
                tokens[i].line,
                format!(
                    "{detail}: {class} inside serve query handler `{}`; handlers must score \
                     against the version-pinned snapshot with no locks, I/O, or rebuilds \
                     (or justify with linklens-allow)",
                    f.name
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::surface;
    use crate::symbols::parse_file;
    use crate::workspace::{FileInfo, FileKind};

    fn info() -> FileInfo {
        FileInfo {
            path: "crates/metrics/src/fixture.rs".into(),
            krate: "metrics".into(),
            kind: FileKind::Lib,
            is_crate_root: false,
            is_shim: false,
        }
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        let p = parse_file(&info(), src);
        let s = surface(std::slice::from_ref(&p));
        let mut out = Vec::new();
        check_file(&p, &s, &mut out);
        out
    }

    fn count(diags: &[Diagnostic], rule: &str) -> usize {
        diags.iter().filter(|d| d.rule == rule).count()
    }

    #[test]
    fn unordered_collect_into_vec_fires() {
        let d = run(
            "fn score_pairs(set: &HashSet<u32>) -> Vec<u32> {\n  let picked: Vec<u32> = set.iter().copied().collect();\n  picked\n}",
        );
        assert_eq!(count(&d, "unordered-iteration-in-deterministic-path"), 1);
    }

    #[test]
    fn collect_then_sort_is_exempt() {
        let d = run(
            "fn score_pairs(set: &HashSet<u32>) -> Vec<u32> {\n  let mut picked: Vec<u32> = set.iter().copied().collect();\n  picked.sort_unstable();\n  picked\n}",
        );
        assert_eq!(count(&d, "unordered-iteration-in-deterministic-path"), 0);
    }

    #[test]
    fn collect_into_ordering_container_and_safe_terminals_exempt() {
        let d = run(
            "fn score_pairs(set: &HashSet<u32>, m: &HashMap<u32, u32>) -> usize {\n  let b: BTreeSet<u32> = set.iter().copied().collect();\n  let c = m.keys().copied().collect::<BTreeSet<u32>>();\n  set.iter().filter(|x| **x > 2).count() + m.values().len()\n}",
        );
        assert_eq!(count(&d, "unordered-iteration-in-deterministic-path"), 0);
    }

    #[test]
    fn for_loop_over_unordered_fires() {
        let d = run(
            "fn score_pairs(m: &HashMap<u32, f64>) {\n  for (k, v) in m {\n    emit(k, v);\n  }\n}\nfn emit(k: &u32, v: &f64) {}",
        );
        assert_eq!(count(&d, "unordered-iteration-in-deterministic-path"), 1);
    }

    #[test]
    fn extend_from_unordered_fires() {
        let d = run(
            "fn score_pairs(set: &HashSet<u32>, out: &mut Vec<u32>) {\n  out.extend(set.iter().copied());\n}",
        );
        assert_eq!(count(&d, "unordered-iteration-in-deterministic-path"), 1);
    }

    #[test]
    fn float_reduction_over_unordered_fires_as_its_own_rule() {
        let d = run(
            "fn score_pairs(w: &HashMap<u32, f64>) -> f64 {\n  let t: f64 = w.values().sum();\n  t\n}",
        );
        assert_eq!(count(&d, "unordered-float-reduction"), 1);
        assert_eq!(count(&d, "unordered-iteration-in-deterministic-path"), 0);
    }

    #[test]
    fn rules_only_apply_on_the_surface() {
        // Same hazards in a non-root, unreached function: nothing fires.
        let d = run(
            "fn helper(set: &HashSet<u32>) -> Vec<u32> {\n  let v: Vec<u32> = set.iter().copied().collect();\n  v\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn reachability_pulls_callees_onto_the_surface() {
        let d = run(
            "fn score_pairs(set: &HashSet<u32>) -> Vec<u32> { helper(set) }\nfn helper(set: &HashSet<u32>) -> Vec<u32> {\n  let v: Vec<u32> = set.iter().copied().collect();\n  v\n}",
        );
        assert_eq!(count(&d, "unordered-iteration-in-deterministic-path"), 1);
    }

    #[test]
    fn nondeterministic_sources_fire() {
        let d = run(
            "fn score_pairs() {\n  let t = Instant::now();\n  let mut rng = StdRng::from_entropy();\n  let id = thread::current();\n}",
        );
        assert_eq!(count(&d, "nondeterministic-source-in-deterministic-path"), 3);
    }

    #[test]
    fn pointer_to_usize_fires_only_when_cast() {
        let d = run(
            "fn score_pairs(v: &[u32]) {\n  let addr = v.as_ptr() as usize;\n  let p = v.as_ptr();\n}",
        );
        assert_eq!(count(&d, "nondeterministic-source-in-deterministic-path"), 1);
    }

    #[test]
    fn bare_panic_fires_but_gated_and_err_rearm_do_not() {
        let d = run(
            "fn score_pairs(x: u32) {\n  match f(x) {\n    Ok(v) => v,\n    Err(e) => panic!(\"{e}\"),\n  };\n  if x > 3 { unreachable!(\"bad\") }\n}\nfn predict_audit(x: u32) {\n  if audit_enabled() { panic!(\"invariant\") }\n}\nfn f(x: u32) -> Result<u32, u32> { Ok(x) }",
        );
        assert_eq!(count(&d, "panic-in-deterministic-path"), 1);
    }

    // --- blocking-in-query-path ----------------------------------------

    fn serve_info() -> FileInfo {
        FileInfo {
            path: "crates/serve/src/query.rs".into(),
            krate: "serve".into(),
            kind: FileKind::Lib,
            is_crate_root: false,
            is_shim: false,
        }
    }

    fn run_serve(src: &str) -> Vec<Diagnostic> {
        let p = parse_file(&serve_info(), src);
        let s = surface(std::slice::from_ref(&p));
        let mut out = Vec::new();
        check_file(&p, &s, &mut out);
        out
    }

    #[test]
    fn lock_held_scoring_in_marked_handler_fires() {
        let d = run_serve(
            "// linklens-deterministic: serving parity handler\npub fn answer_query(&self) -> Vec<f64> {\n  let live = self.live.lock().unwrap();\n  score(&live)\n}\nfn score(s: &S) -> Vec<f64> { vec![] }",
        );
        assert_eq!(count(&d, "blocking-in-query-path"), 1);
        assert_eq!(d.iter().find(|x| x.rule == "blocking-in-query-path").map(|x| x.line), Some(3));
    }

    #[test]
    fn io_and_rebuilds_in_marked_handler_fire() {
        let d = run_serve(
            "// linklens-deterministic: handler\npub fn answer_query(path: &Path) -> Vec<f64> {\n  println!(\"query\");\n  let raw = std::fs::read_to_string(path);\n  let snap = SnapshotBuilder::new(&trace).advance_to(7);\n  vec![]\n}",
        );
        // println! + read_to_string + the rebuild line (SnapshotBuilder
        // and .advance_to() share a line, so they dedup to one finding).
        assert_eq!(count(&d, "blocking-in-query-path"), 3);
    }

    #[test]
    fn unmarked_serve_fns_and_other_crates_are_exempt() {
        // Same hazards outside a marked handler: ingest/publish paths may
        // lock and rebuild freely.
        let d = run_serve(
            "pub fn publish(&self) -> u64 {\n  let mut live = self.live.lock().unwrap();\n  live.version()\n}",
        );
        assert_eq!(count(&d, "blocking-in-query-path"), 0);
        // A marked fn in a non-serve crate is deterministic-surface but
        // not a query handler.
        let p = parse_file(
            &info(),
            "// linklens-deterministic: kernel order\nfn score_seed(&self) { self.state.lock(); }",
        );
        let s = surface(std::slice::from_ref(&p));
        let mut out = Vec::new();
        check_file(&p, &s, &mut out);
        assert_eq!(count(&out, "blocking-in-query-path"), 0);
    }

    #[test]
    fn clean_handler_and_justified_allow_pass() {
        let d = run_serve(
            "// linklens-deterministic: serving parity handler\npub fn candidate_targets(snap: &Snapshot, source: u32) -> Vec<(u32, u32)> {\n  let mut out = Vec::new();\n  for v in snap.neighbors(source) { out.push((source, v)); }\n  out\n}",
        );
        assert_eq!(count(&d, "blocking-in-query-path"), 0);
        // Suppression travels through the shared allow machinery; check
        // via the full single-file path in rules::check_file equivalent:
        // here we only assert the raw finding exists for the suppressor
        // test in rules.rs fixtures.
    }

    #[test]
    fn test_code_inside_serve_handlers_is_exempt() {
        let d = run_serve(
            "#[cfg(test)]\nmod tests {\n  // linklens-deterministic: fixture\n  fn answer_query() { println!(\"x\"); }\n}",
        );
        assert_eq!(count(&d, "blocking-in-query-path"), 0);
    }

    #[test]
    fn test_code_inside_surface_files_is_exempt() {
        let d = run(
            "fn score_pairs(set: &HashSet<u32>) -> usize { set.len() }\n#[cfg(test)]\nmod tests {\n  fn score_helper(set: &HashSet<u32>) -> Vec<u32> { set.iter().copied().collect() }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
