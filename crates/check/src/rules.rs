//! The repo-specific lint rules and the per-file checking engine.
//!
//! Every rule pattern-matches the token stream from [`crate::lexer`]; no
//! rule ever sees string-literal or comment contents, so quoted code can
//! never false-positive. Rules scope themselves by crate and
//! [`FileKind`], and every token inside `#[test]` / `#[cfg(test)]` items
//! is exempt (the paper's correctness argument is about *shipping* code
//! paths — tests may unwrap freely).
//!
//! This module holds the *phase-1* (single-file) rules and the shared rule
//! table; the *phase-2* dataflow rules over the workspace symbol graph
//! live in [`crate::dataflow`] and are registered here so `--explain`,
//! suppression auditing, and the reports all draw from one table.
//!
//! ## Suppressions
//!
//! A violation is suppressed by a `// linklens-allow(rule): justification`
//! comment on the same line or the line directly above; the directive must
//! start the comment (prose mentioning the syntax is not a directive). The
//! justification after the colon is mandatory: an allow without one raises
//! `unjustified-allow`, an allow naming a rule that does not exist raises
//! `unknown-rule`, and an allow that no longer suppresses anything raises
//! `stale-allow` — so suppressions stay auditable instead of rotting into
//! cargo-cult annotations.

use crate::lexer::{self, Comment, Tok, Token};
use crate::workspace::{FileInfo, FileKind};

/// Crates whose library code the `unwrap-in-lib` and `truncating-cast`
/// rules gate: the substrate every score and snapshot flows through.
const GATED_CRATES: &[&str] = &["graph", "metrics", "linalg", "core"];

/// Integer types an `as` cast may silently truncate into.
const NARROW_INTS: &[&str] = &["u32", "u16", "u8", "i32", "i16", "i8"];

/// One rule's full documentation: the table below is the single source of
/// truth for rule names, the one-line contracts shown in reports, and the
/// rationale + fix examples printed by `linklens-check --explain` — the
/// explain output can never drift from what the checker enforces.
#[derive(Debug)]
pub struct RuleSpec {
    /// The name used in diagnostics and `linklens-allow` directives.
    pub name: &'static str,
    /// One-line contract (report tables, SARIF short description).
    pub contract: &'static str,
    /// Why the rule exists, in terms of the paper's correctness argument.
    pub rationale: &'static str,
    /// A minimal before/after fix example.
    pub fix: &'static str,
}

/// Rules enforced by the phase-2 workspace analysis (symbol graph +
/// dataflow) rather than per-file token scans. `stale-allow` judgements in
/// single-file contexts skip directives naming these, since a lone file
/// cannot prove a workspace-level suppression unnecessary.
pub(crate) const PHASE2_RULES: &[&str] = &[
    "unordered-iteration-in-deterministic-path",
    "nondeterministic-source-in-deterministic-path",
    "unordered-float-reduction",
    "panic-in-deterministic-path",
    "blocking-in-query-path",
];

/// Every rule the checker knows.
pub const RULES: &[RuleSpec] = &[
    RuleSpec {
        name: "nan-unsafe-ordering",
        contract: "`partial_cmp(..).unwrap()/expect()` on float keys panics (or, loosened, misorders) on NaN; use `f64::total_cmp`",
        rationale: "Rankings drive every accuracy number in the paper; one NaN key either aborts a sweep mid-run or, if the unwrap is ever loosened to unwrap_or, silently reorders predictions.",
        fix: "- v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n+ v.sort_by(|a, b| a.total_cmp(b));",
    },
    RuleSpec {
        name: "truncating-cast",
        contract: "`as`-cast to a narrow integer in CSR/offset code can silently truncate; use a checked conversion or justify",
        rationale: "CSR offsets index tens of millions of edges at paper scale; a u32 truncation wraps silently and corrupts every neighborhood read after it instead of failing loudly.",
        fix: "- let off = total as u32;\n+ let off = u32::try_from(total).expect(\"offset fits u32\");\n(or justify the bound: // linklens-allow(truncating-cast): node ids are u32 by construction)",
    },
    RuleSpec {
        name: "unwrap-in-lib",
        contract: "`unwrap()/expect()` in library code of the scoring substrate; return Result/Option or justify the invariant",
        rationale: "A panic in graph/metrics/linalg/core kills a multi-hour sweep with no structured error; recoverable conditions must travel through Result so callers can classify them.",
        fix: "- let first = pairs.first().unwrap();\n+ let Some(first) = pairs.first() else { return Vec::new() };",
    },
    RuleSpec {
        name: "missing-forbid-unsafe",
        contract: "every crate root must keep `#![forbid(unsafe_code)]`",
        rationale: "The engine's bit-identity claims lean on the compiler's aliasing and initialization guarantees; one unsafe block invalidates them workspace-wide.",
        fix: "+ #![forbid(unsafe_code)]  (first item of lib.rs / main.rs)",
    },
    RuleSpec {
        name: "print-in-lib",
        contract: "`println!`-family output in library code; diagnostics must travel through return values",
        rationale: "Library prints interleave nondeterministically with bench/CLI output and cannot be captured by callers; structured results keep runs comparable.",
        fix: "- eprintln!(\"skipping row {i}\");\n+ skipped.push(i);  // and return it",
    },
    RuleSpec {
        name: "per-pair-intersection",
        contract: "a fresh `common_neighbors`/`common_neighbor_count` merge per pair inside a `score_pairs` impl; route local metrics through the fused kernel or justify the slow path",
        rationale: "One sorted-merge intersection per pair per metric is the cost the source-batched fused kernel removed (16x); reintroducing it in an engine path silently regresses the sweep.",
        fix: "Advertise fused_kind() so the engine batches by source; reference oracles keep the slow path with a justified allow.",
    },
    RuleSpec {
        name: "per-source-power-iteration",
        contract: "a fresh per-source solve (`walk_distribution`/`forward_push`/`two_pass_scores`/`bfs_distances`) inside a `score_pairs` impl; route global metrics through the batched solver engine or justify the reference path",
        rationale: "One full power-iteration or BFS per source per call is the cost the blocked multi-source solvers removed (6.6x); engine paths must go through osn_metrics::solver.",
        fix: "Route through score_pairs_cached + SolverCache; per-source reference oracles keep the slow path with a justified allow.",
    },
    RuleSpec {
        name: "refit-in-score-pairs",
        contract: "a fresh `fit`/`prepare` factorization per `score_pairs` call refits the whole model per batch; reuse the per-snapshot cached fit (prepare_cached / SolverCache) or justify the one-shot path",
        rationale: "Refitting ALS per pair batch turns one factorization per snapshot into hundreds; the SolverCache model slots exist so rescal_fits == 1 across a scoring sweep.",
        fix: "- let model = self.fit(snap);\n+ let model = self.fitted_model(snap, cache, threads)?;  // cached per snapshot",
    },
    RuleSpec {
        name: "post-hoc-candidate-retain",
        contract: "`.retain()`/`.filter()` on a candidate-pair collection in core/metrics library code filters after enumeration; push the predicate into the walk as a PruneSpec or justify the post-hoc oracle",
        rationale: "Every pair rejected after enumeration was still enumerated, slot-assigned, and possibly scored; the §6.2 pruning pushdown cut candidates 11.6x by filtering inside the walk.",
        fix: "- pairs.retain(|p| filter.keeps(p));\n+ let pairs = enumerate_with(PruneSpec::from(filter));  // predicate inside the walk",
    },
    RuleSpec {
        name: "full-trace-materialization",
        contract: "a full edge-list materialization (`load_full` / `read_cache` / `read_cache_file`) in library code; large traces must flow through the windowed streaming reader, or justify the small-trace in-core path",
        rationale: "The sectioned cache and windowed reader exist so 10^6-10^7-node traces never hold the full edge list in RAM; one load_full on a sweep path silently reintroduces the O(edges) working set the streaming layer removed.",
        fix: "- let g = reader.load_full()?;\n+ let mut seq = StreamingSequence::with_count(reader, snapshots);  // windowed delta reads\n(or justify: // linklens-allow(full-trace-materialization): sanctioned small-trace in-core entry point)",
    },
    RuleSpec {
        name: "unordered-iteration-in-deterministic-path",
        contract: "iterating a `HashMap`/`HashSet` on the deterministic surface in an order that can reach scores, top-k, or serialized output; use an order-stable structure or pin the order with a sort",
        rationale: "std HashMap/HashSet iteration order varies per process and per instance; one unordered iteration feeding a Vec, a fold, or serialized output makes every downstream accuracy number irreproducible — exactly the silent evaluation corruption 'Evaluating Link Prediction Methods' warns about. Iterations that provably cannot carry order out (.count()/.any()/.all(), collects into unordered or self-ordering containers, or a collect immediately followed by a sort of the same binding) are exempt.",
        fix: "- let picked: Vec<_> = set.iter().copied().filter(keep).collect();\n+ let mut picked: Vec<_> = set.iter().copied().filter(keep).collect();\n+ picked.sort_unstable();  // order pinned before anything downstream sees it\n(or switch the container to BTreeMap/BTreeSet)",
    },
    RuleSpec {
        name: "nondeterministic-source-in-deterministic-path",
        contract: "a nondeterministic source (`Instant::now`, `SystemTime`, `thread_rng`/`from_entropy`, `thread::current`, pointer-to-usize) on the deterministic surface; inject seeds/clocks from the caller",
        rationale: "The engine's contract is bit-identical output across thread counts and reruns; a wall-clock read, OS-entropy RNG, thread id, or address-based value inside scoring breaks it invisibly until a property test happens to catch it.",
        fix: "- let mut rng = rand::rngs::StdRng::from_entropy();\n+ let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);",
    },
    RuleSpec {
        name: "unordered-float-reduction",
        contract: "an `f64` reduction (`sum`/`product`/`fold`/`reduce`) folded over a `HashMap`/`HashSet` iteration on the deterministic surface; float addition is not associative, so the fold order must be pinned",
        rationale: "(a + b) + c != a + (b + c) in f64; a reduction over unordered iteration produces run-dependent low bits that break the bit-identity property tests and can flip top-k ties.",
        fix: "- let total: f64 = weights.values().sum();\n+ let mut ws: Vec<f64> = weights.values().copied().collect();\n+ ws.sort_by(|a, b| a.total_cmp(b));\n+ let total: f64 = ws.iter().sum();  // or keep a BTreeMap keyed by node id",
    },
    RuleSpec {
        name: "panic-in-deterministic-path",
        contract: "a `panic!`/`unreachable!`/`todo!`/`unimplemented!` on the deterministic surface that is not audit-gated and not re-raising a structured error; make the state unrepresentable or return a structured error",
        rationale: "Sanctioned panics are the audit layer (gated on audit_enabled) and `Err(e) => panic!` re-raises of the structured InvariantViolation/SolverError/FactorError classes; any other panic is an unclassified crash in a path that claims total determinism.",
        fix: "- Node::Split { .. } => unreachable!(\"walker returns leaves\"),\n+ // restructure the helper to return the leaf payload so the split arm cannot exist",
    },
    RuleSpec {
        name: "blocking-in-query-path",
        contract: "a lock acquisition, blocking I/O, or snapshot rebuild inside a marked `serve` query handler; the bounded-latency query path must stay lock-free and compute-only",
        rationale: "linklens-serve promises bounded per-query latency concurrently with ingest: workers pin an immutable snapshot and score without shared state. One `.lock()` held across scoring serializes every worker behind ingest, one blocking read stalls the queue, and one SnapshotBuilder rebuild per query is the stop-the-world the versioned swap exists to avoid.",
        fix: "- let snap = self.live.lock().unwrap().snapshot();  // inside the handler\n+ let pinned = store.current();  // version-pinned Arc swap, taken outside scoring\n(or justify a sanctioned case: // linklens-allow(blocking-in-query-path): wait-free counter, never held across scoring)",
    },
    RuleSpec {
        name: "stale-allow",
        contract: "a `linklens-allow(..)` directive that no longer suppresses any finding; delete it",
        rationale: "Suppressions are debt: once the code they excused is gone, a lingering allow masks the next real violation introduced on that line.",
        fix: "Delete the directive (re-run linklens-check to confirm nothing resurfaces).",
    },
    RuleSpec {
        name: "unjustified-allow",
        contract: "a `linklens-allow(..)` without a `: justification` suffix",
        rationale: "An allow without a recorded reason cannot be audited; the next reader cannot tell a proven invariant from a silenced bug.",
        fix: "- // linklens-allow(unwrap-in-lib)\n+ // linklens-allow(unwrap-in-lib): slice non-empty, checked by caller assert",
    },
    RuleSpec {
        name: "unknown-rule",
        contract: "a `linklens-allow(..)` naming a rule the checker does not know",
        rationale: "A typoed rule name suppresses nothing while looking like it does; the directive must name a real rule to be auditable.",
        fix: "Check the rule list in `linklens-check --explain` and fix the name.",
    },
];

/// The spec for `name`, if the checker knows that rule.
pub fn spec(name: &str) -> Option<&'static RuleSpec> {
    RULES.iter().find(|r| r.name == name)
}

fn rule_exists(name: &str) -> bool {
    spec(name).is_some()
}

/// One `file:line` finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
    /// True when a `linklens-allow` directive covers this finding; the
    /// checker reports suppressed findings in `--fix-report` but they do
    /// not fail the run.
    pub suppressed: bool,
    /// True when the committed baseline ratchet absorbs this finding: it
    /// is enumerated (text, JSON, SARIF `note`) but does not fail the run.
    /// Only the engine's baseline pass ever sets this.
    pub baselined: bool,
}

impl Diagnostic {
    pub fn new(rule: &'static str, path: &str, line: u32, message: String) -> Self {
        Diagnostic {
            rule,
            path: path.to_string(),
            line,
            message,
            suppressed: false,
            baselined: false,
        }
    }
}

/// A parsed `linklens-allow(rule, …): justification` directive.
#[derive(Debug)]
pub(crate) struct Allow {
    pub(crate) line: u32,
    pub(crate) end_line: u32,
    pub(crate) rules: Vec<String>,
    pub(crate) justified: bool,
}

/// Whether directive `a` covers a finding of `rule` at `line`: same line
/// as the directive, or the line directly below it.
pub(crate) fn covers(a: &Allow, rule: &str, line: u32) -> bool {
    a.rules.iter().any(|r| r == rule) && (a.line == line || a.end_line + 1 == line)
}

pub(crate) fn parse_allows(comments: &[Comment]) -> Vec<Allow> {
    const NEEDLE: &str = "linklens-allow(";
    comments
        .iter()
        .filter_map(|cm| {
            // A directive must *start* the comment (modulo whitespace and
            // doc-comment `!`/`/` framing); prose that merely mentions the
            // syntax — like this crate's own docs — is not a directive.
            let trimmed = cm.text.trim_start_matches(['/', '!']).trim_start();
            if !trimmed.starts_with(NEEDLE) {
                return None;
            }
            let rest = &trimmed[NEEDLE.len()..];
            let close = rest.find(')')?;
            let rules: Vec<String> = rest[..close]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            let after = rest[close + 1..].trim_start();
            let justified = after.starts_with(':') && !after[1..].trim().is_empty();
            Some(Allow { line: cm.line, end_line: cm.end_line, rules, justified })
        })
        .collect()
}

/// Checks one file with the phase-1 rules only, returning every diagnostic
/// (suppressed ones flagged). The workspace engine instead runs
/// [`phase1`] + the phase-2 dataflow pass and then [`finish_file`], so
/// suppression and directive auditing see both phases; this single-file
/// entry point exists for targeted use and passes `full = false` so
/// directives naming phase-2 rules are never misjudged stale.
pub fn check_file(info: &FileInfo, src: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(src);
    let mask = lexer::test_mask(&lexed.tokens);
    let allows = parse_allows(&lexed.comments);
    let mut diags = phase1(info, &lexed.tokens, &mask);
    finish_file(info, &lexed.tokens, &mask, &allows, &mut diags, false);
    diags
}

/// Runs every single-file (phase-1) rule over one lexed file. No
/// suppression is applied here — the caller finishes with [`finish_file`]
/// once all rule passes (including phase 2, if any) have contributed.
pub(crate) fn phase1(info: &FileInfo, tokens: &[Token], mask: &[bool]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let test_code = matches!(info.kind, FileKind::Test | FileKind::Bench);

    if !test_code {
        nan_unsafe_ordering(info, tokens, mask, &mut diags);
        if !info.is_shim
            && GATED_CRATES.contains(&info.krate.as_str())
            && info.kind == FileKind::Lib
        {
            truncating_cast(info, tokens, mask, &mut diags);
            unwrap_in_lib(info, tokens, mask, &mut diags);
        }
        if !info.is_shim && info.kind == FileKind::Lib {
            print_in_lib(info, tokens, mask, &mut diags);
            per_pair_intersection(info, tokens, mask, &mut diags);
            per_source_power_iteration(info, tokens, mask, &mut diags);
            refit_in_score_pairs(info, tokens, mask, &mut diags);
            full_trace_materialization(info, tokens, mask, &mut diags);
        }
        if !info.is_shim
            && matches!(info.krate.as_str(), "core" | "metrics")
            && info.kind == FileKind::Lib
        {
            post_hoc_candidate_retain(info, tokens, mask, &mut diags);
        }
    }
    if info.is_crate_root {
        missing_forbid_unsafe(info, tokens, &mut diags);
    }
    diags
}

/// True when any token on a line in `lo..=hi` sits inside a
/// `#[test]` / `#[cfg(test)]` item.
fn lines_masked(tokens: &[Token], mask: &[bool], lo: u32, hi: u32) -> bool {
    tokens.iter().zip(mask).any(|(t, &m)| m && t.line >= lo && t.line <= hi)
}

/// Applies suppressions to `diags`, audits the directives themselves
/// (`unjustified-allow`, `unknown-rule`, `stale-allow`), and sorts the
/// result. `full = true` means the phase-2 dataflow rules also ran over
/// this file, so a directive naming one of them can be judged stale; the
/// single-file compat path passes `false` and skips that judgement.
pub(crate) fn finish_file(
    info: &FileInfo,
    tokens: &[Token],
    mask: &[bool],
    allows: &[Allow],
    diags: &mut Vec<Diagnostic>,
    full: bool,
) {
    // Apply suppressions: an allow on the violation's line or the line
    // directly above it covers the violation.
    for d in diags.iter_mut() {
        d.suppressed = allows.iter().any(|a| covers(a, d.rule, d.line));
    }

    // Audit the directives themselves. The audit findings are appended
    // after the suppression pass on purpose: a directive cannot excuse
    // its own defects.
    let mut audit = Vec::new();
    let test_file = matches!(info.kind, FileKind::Test | FileKind::Bench);
    for a in allows {
        if !a.justified {
            audit.push(Diagnostic::new(
                "unjustified-allow",
                &info.path,
                a.line,
                "linklens-allow without a `: justification`; say why the rule is safe to waive here"
                    .to_string(),
            ));
        }
        let mut any_unknown = false;
        for r in &a.rules {
            if !rule_exists(r) {
                any_unknown = true;
                audit.push(Diagnostic::new(
                    "unknown-rule",
                    &info.path,
                    a.line,
                    format!("linklens-allow names unknown rule `{r}`"),
                ));
            }
        }
        // Stale-allow: a well-formed directive that suppressed nothing.
        // Malformed directives are already flagged above; directives in
        // test code are outside every rule's scope, so "suppressed
        // nothing" proves nothing there. Without the phase-2 pass (`full
        // = false`), directives naming a phase-2 rule are skipped too —
        // a lone file cannot prove a workspace-level suppression unused.
        if !a.justified || any_unknown {
            continue;
        }
        if test_file || lines_masked(tokens, mask, a.line, a.end_line + 1) {
            continue;
        }
        if !full && a.rules.iter().any(|r| PHASE2_RULES.contains(&r.as_str())) {
            continue;
        }
        let used = diags.iter().any(|d| d.suppressed && covers(a, d.rule, d.line));
        if !used {
            audit.push(Diagnostic::new(
                "stale-allow",
                &info.path,
                a.line,
                format!(
                    "linklens-allow({}) no longer suppresses any finding; delete it",
                    a.rules.join(", ")
                ),
            ));
        }
    }
    diags.extend(audit);

    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
}

pub(crate) fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

pub(crate) fn punct_at(tokens: &[Token], i: usize, p: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(q)) if *q == p)
}

/// Index just past the `)` matching the `(` at `open`, or `tokens.len()`.
pub(crate) fn past_matching_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < tokens.len() {
        match tokens[j].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Index just past the `}` matching the `{` at `open`, or `tokens.len()`.
pub(crate) fn past_matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < tokens.len() {
        match tokens[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// `.common_neighbors(..)` / `.common_neighbor_count(..)` inside the body
/// of a `score_pairs` / `score_pairs_t` implementation: a fresh sorted-
/// merge intersection per pair per metric is exactly the cost the fused
/// source-batched kernel exists to remove. Reference implementations keep
/// the slow path on purpose and suppress with a justification.
fn per_pair_intersection(
    info: &FileInfo,
    tokens: &[Token],
    mask: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    const MERGES: &[&str] = &["common_neighbors", "common_neighbor_count"];
    let mut i = 0;
    while i < tokens.len() {
        if mask[i]
            || ident_at(tokens, i) != Some("fn")
            || !matches!(ident_at(tokens, i + 1), Some("score_pairs") | Some("score_pairs_t"))
        {
            i += 1;
            continue;
        }
        // Find the body's `{`; hitting `;` first means a bodyless trait
        // declaration, which has nothing to flag.
        let mut j = i + 2;
        let mut open = None;
        while j < tokens.len() {
            match tokens[j].tok {
                Tok::Punct('{') => {
                    open = Some(j);
                    break;
                }
                Tok::Punct(';') => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let end = past_matching_brace(tokens, open);
        for t in open..end.min(tokens.len()) {
            if mask[t] || !punct_at(tokens, t, '.') {
                continue;
            }
            let Some(name) = ident_at(tokens, t + 1) else { continue };
            if MERGES.contains(&name) && punct_at(tokens, t + 2, '(') {
                out.push(Diagnostic {
                    rule: "per-pair-intersection",
                    path: info.path.clone(),
                    line: tokens[t + 1].line,
                    message: format!(
                        "`.{name}()` inside a score_pairs impl pays one sorted-merge intersection per pair; \
                         advertise a fused_kind so the engine batches by source, or justify the slow path \
                         with linklens-allow"
                    ),
                    suppressed: false, baselined: false,
                });
            }
        }
        i = end;
    }
}

/// A fresh per-source power-iteration or frontier solve
/// (`walk_distribution`, `forward_push`, `two_pass_scores`,
/// `bfs_distances`) inside the body of any `score_pairs*` implementation:
/// one full solve per source per call is exactly the cost the batched
/// solver engine ([`osn_metrics::solver`]) exists to remove. The retained
/// per-source reference oracles keep the slow path on purpose and
/// suppress with a justification. Matched by name prefix, so
/// `score_pairs_per_source` and friends are gated too.
fn per_source_power_iteration(
    info: &FileInfo,
    tokens: &[Token],
    mask: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    const SOLVES: &[&str] =
        &["walk_distribution", "forward_push", "two_pass_scores", "bfs_distances"];
    let mut i = 0;
    while i < tokens.len() {
        if mask[i]
            || ident_at(tokens, i) != Some("fn")
            || !ident_at(tokens, i + 1).is_some_and(|n| n.starts_with("score_pairs"))
        {
            i += 1;
            continue;
        }
        // Find the body's `{`; hitting `;` first means a bodyless trait
        // declaration, which has nothing to flag.
        let mut j = i + 2;
        let mut open = None;
        while j < tokens.len() {
            match tokens[j].tok {
                Tok::Punct('{') => {
                    open = Some(j);
                    break;
                }
                Tok::Punct(';') => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let end = past_matching_brace(tokens, open);
        for t in open..end.min(tokens.len()) {
            if mask[t] {
                continue;
            }
            let Some(name) = ident_at(tokens, t) else { continue };
            if SOLVES.contains(&name) && punct_at(tokens, t + 1, '(') {
                out.push(Diagnostic {
                    rule: "per-source-power-iteration",
                    path: info.path.clone(),
                    line: tokens[t].line,
                    message: format!(
                        "`{name}()` inside a score_pairs impl pays one full solve per source per call; \
                         route the metric through the batched solver engine, or justify the reference \
                         path with linklens-allow"
                    ),
                    suppressed: false, baselined: false,
                });
            }
        }
        i = end;
    }
}

/// A fresh factorization (`fit(..)` / `prepare(..)`) inside the body of
/// any `score_pairs*` implementation: refitting the whole model per pair
/// batch is exactly the cost the per-snapshot model cache
/// (`SolverCache::store_rescal` / `prepare_cached`) exists to remove.
/// Deliberate one-shot convenience entries suppress with a
/// justification. Only the exact idents `fit` and `prepare` are gated,
/// so `prepare_cached`/`fitted_model` (the cache-aware paths) pass.
fn refit_in_score_pairs(
    info: &FileInfo,
    tokens: &[Token],
    mask: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    const REFITS: &[&str] = &["fit", "prepare"];
    let mut i = 0;
    while i < tokens.len() {
        if mask[i]
            || ident_at(tokens, i) != Some("fn")
            || !ident_at(tokens, i + 1).is_some_and(|n| n.starts_with("score_pairs"))
        {
            i += 1;
            continue;
        }
        // Find the body's `{`; hitting `;` first means a bodyless trait
        // declaration, which has nothing to flag.
        let mut j = i + 2;
        let mut open = None;
        while j < tokens.len() {
            match tokens[j].tok {
                Tok::Punct('{') => {
                    open = Some(j);
                    break;
                }
                Tok::Punct(';') => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let end = past_matching_brace(tokens, open);
        for t in open..end.min(tokens.len()) {
            if mask[t] {
                continue;
            }
            let Some(name) = ident_at(tokens, t) else { continue };
            if REFITS.contains(&name) && punct_at(tokens, t + 1, '(') {
                out.push(Diagnostic {
                    rule: "refit-in-score-pairs",
                    path: info.path.clone(),
                    line: tokens[t].line,
                    message: format!(
                        "`{name}()` inside a score_pairs impl refits the whole model per batch; \
                         reuse the per-snapshot cached fit (prepare_cached / SolverCache), or \
                         justify the one-shot path with linklens-allow"
                    ),
                    suppressed: false,
                    baselined: false,
                });
            }
        }
        i = end;
    }
}

/// `.retain(..)` / `.filter(..)` chained off a receiver whose name smells
/// like a candidate-pair collection (`*pair*` / `*cand*`) in `core` /
/// `metrics` library code. Filtering candidates *after* enumeration is the
/// post-hoc path the §6.2 pruning pushdown exists to remove: every
/// rejected pair was still enumerated, slot-assigned, and — when the
/// filter runs after scoring — scored. Push the predicate into the walk
/// as a `PruneSpec`; the retained post-hoc oracle justifies itself with
/// linklens-allow.
fn post_hoc_candidate_retain(
    info: &FileInfo,
    tokens: &[Token],
    mask: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    for i in 0..tokens.len() {
        if mask[i] || !punct_at(tokens, i, '.') {
            continue;
        }
        let Some(name) = ident_at(tokens, i + 1) else { continue };
        if (name != "retain" && name != "filter") || !punct_at(tokens, i + 2, '(') {
            continue;
        }
        if receiver_chain_mentions_candidates(tokens, i) {
            out.push(Diagnostic {
                rule: "post-hoc-candidate-retain",
                path: info.path.clone(),
                line: tokens[i + 1].line,
                message: format!(
                    "`.{name}()` on a candidate-pair collection filters after enumeration; push the \
                     predicate into the walk as a PruneSpec, or justify the post-hoc oracle with \
                     linklens-allow"
                ),
                suppressed: false, baselined: false,
            });
        }
    }
}

/// A full edge-list materialization call (`load_full`, `read_cache`,
/// `read_cache_file`) in library code: the sectioned cache and the
/// windowed streaming reader (DESIGN.md §16) exist so large traces never
/// hold every edge in RAM at once. The sanctioned small-trace in-core
/// entry points keep the path with a justified allow; definitions
/// (`fn read_cache`) do not self-flag.
fn full_trace_materialization(
    info: &FileInfo,
    tokens: &[Token],
    mask: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    const MATERIALIZERS: &[&str] = &["load_full", "read_cache", "read_cache_file"];
    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        let Some(name) = ident_at(tokens, i) else { continue };
        if !MATERIALIZERS.contains(&name) || !punct_at(tokens, i + 1, '(') {
            continue;
        }
        // `fn read_cache(..)` is the definition, not a call.
        if i >= 1 && ident_at(tokens, i - 1) == Some("fn") {
            continue;
        }
        out.push(Diagnostic {
            rule: "full-trace-materialization",
            path: info.path.clone(),
            line: tokens[i].line,
            message: format!(
                "`{name}()` materializes the full edge list in RAM; stream the trace through the \
                 windowed reader (StreamingSequence / StreamingSnapshotBuilder), or justify the \
                 small-trace in-core path with linklens-allow"
            ),
            suppressed: false,
            baselined: false,
        });
    }
}

/// Walks the method-call receiver chain leftward from the `.` at `dot`,
/// skipping over argument lists and index expressions, and reports whether
/// any chain ident names a candidate-pair collection. The chain ends at
/// the first token that cannot belong to a receiver expression.
fn receiver_chain_mentions_candidates(tokens: &[Token], dot: usize) -> bool {
    let mut depth = 0i32;
    let mut j = dot;
    while j > 0 {
        j -= 1;
        match &tokens[j].tok {
            Tok::Punct(')') | Tok::Punct(']') => depth += 1,
            Tok::Punct('(') | Tok::Punct('[') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            Tok::Ident(s) if depth == 0 => {
                let lower = s.to_ascii_lowercase();
                if lower.contains("pair") || lower.contains("cand") {
                    return true;
                }
            }
            Tok::Punct('.') | Tok::Punct('?') | Tok::Punct(':') if depth == 0 => {}
            _ if depth == 0 => break,
            _ => {}
        }
    }
    false
}

/// `partial_cmp(..)` immediately chained into `.unwrap()` / `.expect(..)`.
fn nan_unsafe_ordering(
    info: &FileInfo,
    tokens: &[Token],
    mask: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    for i in 0..tokens.len() {
        if mask[i] || ident_at(tokens, i) != Some("partial_cmp") || !punct_at(tokens, i + 1, '(') {
            continue;
        }
        let after = past_matching_paren(tokens, i + 1);
        if punct_at(tokens, after, '.')
            && matches!(ident_at(tokens, after + 1), Some("unwrap") | Some("expect"))
            && punct_at(tokens, after + 2, '(')
        {
            out.push(Diagnostic {
                rule: "nan-unsafe-ordering",
                path: info.path.clone(),
                line: tokens[i].line,
                message: "partial_cmp + unwrap/expect panics on NaN keys (and misorders if the expect is ever \
                          loosened); sort with f64::total_cmp instead"
                    .to_string(),
                suppressed: false, baselined: false,
            });
        }
    }
}

/// `as u32` (and friends) in CSR/offset-bearing library code.
fn truncating_cast(info: &FileInfo, tokens: &[Token], mask: &[bool], out: &mut Vec<Diagnostic>) {
    for i in 0..tokens.len() {
        if mask[i] || ident_at(tokens, i) != Some("as") {
            continue;
        }
        if let Some(ty) = ident_at(tokens, i + 1) {
            if NARROW_INTS.contains(&ty) {
                out.push(Diagnostic {
                    rule: "truncating-cast",
                    path: info.path.clone(),
                    line: tokens[i].line,
                    message: format!(
                        "`as {ty}` silently truncates out-of-range values; use a checked conversion or \
                         justify the bound with linklens-allow"
                    ),
                    suppressed: false, baselined: false,
                });
            }
        }
    }
}

/// `.unwrap()` / `.expect(..)` in gated library code.
fn unwrap_in_lib(info: &FileInfo, tokens: &[Token], mask: &[bool], out: &mut Vec<Diagnostic>) {
    for i in 0..tokens.len() {
        if mask[i] || !punct_at(tokens, i, '.') {
            continue;
        }
        let Some(name) = ident_at(tokens, i + 1) else { continue };
        if (name == "unwrap" || name == "expect") && punct_at(tokens, i + 2, '(') {
            out.push(Diagnostic {
                rule: "unwrap-in-lib",
                path: info.path.clone(),
                line: tokens[i + 1].line,
                message: format!(
                    "`.{name}()` in `{}` library code; return a Result/Option or justify the invariant \
                     with linklens-allow",
                    info.krate
                ),
                suppressed: false, baselined: false,
            });
        }
    }
}

/// `println!`-family macros in library code.
fn print_in_lib(info: &FileInfo, tokens: &[Token], mask: &[bool], out: &mut Vec<Diagnostic>) {
    const PRINTERS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];
    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        let Some(name) = ident_at(tokens, i) else { continue };
        if PRINTERS.contains(&name) && punct_at(tokens, i + 1, '!') {
            // `macro_rules! println` shadowing or a `use` would still be a
            // smell; only skip definitions (`macro_rules` directly before).
            if i >= 1 && ident_at(tokens, i - 1) == Some("macro_rules") {
                continue;
            }
            out.push(Diagnostic {
                rule: "print-in-lib",
                path: info.path.clone(),
                line: tokens[i].line,
                message: format!(
                    "`{name}!` in `{}` library code; diagnostics must travel through return values",
                    info.krate
                ),
                suppressed: false,
                baselined: false,
            });
        }
    }
}

/// Crate roots must carry `#![forbid(unsafe_code)]`.
fn missing_forbid_unsafe(info: &FileInfo, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    let found = tokens.windows(8).any(|w| {
        matches!(&w[0].tok, Tok::Punct('#'))
            && matches!(&w[1].tok, Tok::Punct('!'))
            && matches!(&w[2].tok, Tok::Punct('['))
            && matches!(&w[3].tok, Tok::Ident(s) if s == "forbid")
            && matches!(&w[4].tok, Tok::Punct('('))
            && matches!(&w[5].tok, Tok::Ident(s) if s == "unsafe_code")
            && matches!(&w[6].tok, Tok::Punct(')'))
            && matches!(&w[7].tok, Tok::Punct(']'))
    });
    if !found {
        out.push(Diagnostic {
            rule: "missing-forbid-unsafe",
            path: info.path.clone(),
            line: 1,
            message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
            suppressed: false,
            baselined: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_info(krate: &str) -> FileInfo {
        FileInfo {
            path: format!("crates/{krate}/src/fixture.rs"),
            krate: krate.to_string(),
            kind: FileKind::Lib,
            is_crate_root: false,
            is_shim: false,
        }
    }

    fn active(diags: &[Diagnostic], rule: &str) -> usize {
        diags.iter().filter(|d| d.rule == rule && !d.suppressed).count()
    }

    // --- nan-unsafe-ordering -------------------------------------------

    #[test]
    fn nan_rule_fires_on_violation() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        let d = check_file(&lib_info("graph"), src);
        assert_eq!(active(&d, "nan-unsafe-ordering"), 1);
        assert_eq!(d.iter().find(|x| x.rule == "nan-unsafe-ordering").map(|x| x.line), Some(1));
    }

    #[test]
    fn nan_rule_fires_on_expect_across_lines() {
        let src = "fn f() {\n  order.sort_by(|&i, &j| {\n    v[j].abs().partial_cmp(&v[i].abs()).expect(\"finite\")\n  });\n}";
        let d = check_file(&lib_info("linalg"), src);
        assert_eq!(active(&d, "nan-unsafe-ordering"), 1);
        assert_eq!(d.iter().find(|x| x.rule == "nan-unsafe-ordering").map(|x| x.line), Some(3));
    }

    #[test]
    fn nan_rule_clean_on_total_cmp_and_bare_partial_cmp() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); let o = a.partial_cmp(&b); }";
        let d = check_file(&lib_info("graph"), src);
        assert_eq!(active(&d, "nan-unsafe-ordering"), 0);
    }

    #[test]
    fn nan_rule_ignores_trait_impls() {
        // A `fn partial_cmp(&self, other: &Self)` definition must not fire.
        let src = "impl PartialOrd for S { fn partial_cmp(&self, other: &Self) -> Option<Ordering> { None } }";
        let d = check_file(&lib_info("metrics"), src);
        assert_eq!(active(&d, "nan-unsafe-ordering"), 0);
    }

    #[test]
    fn nan_rule_suppressed_by_allow() {
        let src = "fn f() {\n  // linklens-allow(nan-unsafe-ordering): keys proven finite two lines up\n  v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}";
        let d = check_file(&lib_info("graph"), src);
        assert_eq!(active(&d, "nan-unsafe-ordering"), 0);
        assert_eq!(d.iter().filter(|x| x.rule == "nan-unsafe-ordering" && x.suppressed).count(), 1);
    }

    // --- truncating-cast -----------------------------------------------

    #[test]
    fn cast_rule_fires_in_gated_crates_only() {
        let src = "fn f(x: usize) -> u32 { x as u32 }";
        assert_eq!(active(&check_file(&lib_info("graph"), src), "truncating-cast"), 1);
        assert_eq!(active(&check_file(&lib_info("trace"), src), "truncating-cast"), 0);
    }

    #[test]
    fn cast_rule_clean_on_widening_and_float() {
        let src = "fn f(x: u32) -> usize { let y = x as u64; let z = x as f64; x as usize }";
        assert_eq!(active(&check_file(&lib_info("graph"), src), "truncating-cast"), 0);
    }

    #[test]
    fn cast_rule_suppressed_same_line() {
        let src = "fn f(n: usize) -> u32 { n as u32 } // linklens-allow(truncating-cast): n <= node count which is u32";
        assert_eq!(active(&check_file(&lib_info("graph"), src), "truncating-cast"), 0);
    }

    // --- unwrap-in-lib -------------------------------------------------

    #[test]
    fn unwrap_rule_fires_on_unwrap_and_expect() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() + o.expect(\"present\") }";
        let d = check_file(&lib_info("core"), src);
        assert_eq!(active(&d, "unwrap-in-lib"), 2);
    }

    #[test]
    fn unwrap_rule_clean_on_unwrap_or_family_and_tests() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap_or(0) + o.unwrap_or_else(|| 1) + o.unwrap_or_default() }\n#[cfg(test)]\nmod tests { fn t() { None::<u32>.unwrap(); } }";
        let d = check_file(&lib_info("metrics"), src);
        assert_eq!(active(&d, "unwrap-in-lib"), 0);
    }

    #[test]
    fn unwrap_rule_not_scoped_to_other_crates() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }";
        assert_eq!(active(&check_file(&lib_info("ml"), src), "unwrap-in-lib"), 0);
    }

    #[test]
    fn unwrap_rule_suppressed_by_allow_line_above() {
        let src = "fn f(o: Option<u32>) -> u32 {\n  // linklens-allow(unwrap-in-lib): slice is non-empty, checked by caller assert\n  o.unwrap()\n}";
        assert_eq!(active(&check_file(&lib_info("graph"), src), "unwrap-in-lib"), 0);
    }

    // --- print-in-lib --------------------------------------------------

    #[test]
    fn print_rule_fires_on_println_family() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); dbg!(1); }";
        let d = check_file(&lib_info("ml"), src);
        assert_eq!(active(&d, "print-in-lib"), 3);
    }

    #[test]
    fn print_rule_clean_in_bins_and_tests() {
        let src = "fn main() { println!(\"x\"); }";
        let bin = FileInfo {
            path: "src/bin/linklens.rs".into(),
            krate: "linklens".into(),
            kind: FileKind::Bin,
            is_crate_root: false,
            is_shim: false,
        };
        assert_eq!(active(&check_file(&bin, src), "print-in-lib"), 0);
        let src_test = "#[test]\nfn t() { println!(\"x\"); }";
        assert_eq!(active(&check_file(&lib_info("graph"), src_test), "print-in-lib"), 0);
    }

    #[test]
    fn print_rule_clean_when_quoted() {
        let src =
            "fn f() -> &'static str { \"println!(..) is banned here\" } // println! in a comment";
        assert_eq!(active(&check_file(&lib_info("graph"), src), "print-in-lib"), 0);
    }

    #[test]
    fn print_rule_suppressed_by_allow() {
        let src = "fn f() {\n  // linklens-allow(print-in-lib): one-time misconfiguration warning, no return channel\n  eprintln!(\"warning\");\n}";
        assert_eq!(active(&check_file(&lib_info("graph"), src), "print-in-lib"), 0);
    }

    // --- per-pair-intersection -----------------------------------------

    #[test]
    fn intersection_rule_fires_inside_score_pairs_bodies() {
        let src = "impl Metric for Cn {\n  fn score_pairs(&self, snap: &Snapshot, pairs: &[(u32, u32)]) -> Vec<f64> {\n    pairs.iter().map(|&(u, v)| snap.common_neighbor_count(u, v) as f64).collect()\n  }\n}";
        let d = check_file(&lib_info("metrics"), src);
        assert_eq!(active(&d, "per-pair-intersection"), 1);
        assert_eq!(d.iter().find(|x| x.rule == "per-pair-intersection").map(|x| x.line), Some(3));
    }

    #[test]
    fn intersection_rule_fires_in_score_pairs_t_too() {
        let src = "fn score_pairs_t(&self, snap: &S, pairs: &[(u32, u32)], threads: usize) -> Vec<f64> {\n  pairs.iter().map(|&(u, v)| snap.common_neighbors(u, v).count() as f64).collect()\n}";
        assert_eq!(active(&check_file(&lib_info("metrics"), src), "per-pair-intersection"), 1);
    }

    #[test]
    fn intersection_rule_skips_bodyless_trait_decls_and_other_fns() {
        let src = "trait Metric {\n  fn score_pairs(&self, snap: &S, pairs: &[(u32, u32)]) -> Vec<f64>;\n}\nfn stats(snap: &S) -> usize { snap.common_neighbor_count(0, 1) }";
        assert_eq!(active(&check_file(&lib_info("metrics"), src), "per-pair-intersection"), 0);
    }

    #[test]
    fn intersection_rule_suppressed_by_allow() {
        let src = "fn score_pairs(&self, snap: &S, pairs: &[(u32, u32)]) -> Vec<f64> {\n  // linklens-allow(per-pair-intersection): reference implementation, engine uses the fused kernel\n  pairs.iter().map(|&(u, v)| snap.common_neighbor_count(u, v) as f64).collect()\n}";
        let d = check_file(&lib_info("metrics"), src);
        assert_eq!(active(&d, "per-pair-intersection"), 0);
        assert_eq!(
            d.iter().filter(|x| x.rule == "per-pair-intersection" && x.suppressed).count(),
            1
        );
    }

    #[test]
    fn intersection_rule_exempt_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n  fn score_pairs(snap: &S) -> f64 { snap.common_neighbor_count(0, 1) as f64 }\n}";
        assert_eq!(active(&check_file(&lib_info("metrics"), src), "per-pair-intersection"), 0);
    }

    // --- per-source-power-iteration ------------------------------------

    #[test]
    fn power_iteration_rule_fires_inside_score_pairs_bodies() {
        let src = "impl Metric for Ppr {\n  fn score_pairs(&self, snap: &Snapshot, pairs: &[(u32, u32)]) -> Vec<f64> {\n    for &(u, _) in pairs { forward_push(snap, u, self.alpha, self.epsilon, &mut scr); }\n    vec![]\n  }\n}";
        let d = check_file(&lib_info("metrics"), src);
        assert_eq!(active(&d, "per-source-power-iteration"), 1);
        assert_eq!(
            d.iter().find(|x| x.rule == "per-source-power-iteration").map(|x| x.line),
            Some(3)
        );
    }

    #[test]
    fn power_iteration_rule_fires_on_per_source_references_too() {
        // Prefix match: `score_pairs_per_source_t` is gated like
        // `score_pairs`, so reference oracles must carry an allow.
        let src = "fn score_pairs_per_source_t(&self, snap: &S, pairs: &[(u32, u32)], threads: usize) -> Vec<f64> {\n  two_pass_scores(snap, pairs, |s, src, scr| walk_distribution(s, src, 3, 0.0, scr), threads)\n}";
        assert_eq!(active(&check_file(&lib_info("metrics"), src), "per-source-power-iteration"), 2);
    }

    #[test]
    fn power_iteration_rule_fires_on_path_qualified_calls() {
        let src = "fn score_pairs(&self, snap: &S, pairs: &[(u32, u32)]) -> Vec<f64> {\n  let dist = traversal::bfs_distances(snap, 0, 6);\n  vec![]\n}";
        assert_eq!(active(&check_file(&lib_info("metrics"), src), "per-source-power-iteration"), 1);
    }

    #[test]
    fn power_iteration_rule_skips_other_fns_and_bodyless_decls() {
        let src = "trait Metric {\n  fn score_pairs(&self, snap: &S, pairs: &[(u32, u32)]) -> Vec<f64>;\n}\nfn helper(snap: &S) -> Vec<u32> { bfs_distances(snap, 0, 6) }";
        assert_eq!(active(&check_file(&lib_info("metrics"), src), "per-source-power-iteration"), 0);
    }

    #[test]
    fn power_iteration_rule_suppressed_by_allow() {
        let src = "fn score_pairs_per_source(&self, snap: &S, pairs: &[(u32, u32)]) -> Vec<f64> {\n  // linklens-allow(per-source-power-iteration): reference oracle, engine uses the batched walker\n  let dist = bfs_distances(snap, 0, 6);\n  vec![]\n}";
        let d = check_file(&lib_info("metrics"), src);
        assert_eq!(active(&d, "per-source-power-iteration"), 0);
        assert_eq!(
            d.iter().filter(|x| x.rule == "per-source-power-iteration" && x.suppressed).count(),
            1
        );
    }

    // --- refit-in-score-pairs ------------------------------------------

    #[test]
    fn refit_rule_fires_on_fit_and_prepare_inside_score_pairs_bodies() {
        let src = "impl Metric for Rescal {\n  fn score_pairs(&self, snap: &Snapshot, pairs: &[(u32, u32)]) -> Vec<f64> {\n    self.prepare(snap).score_chunk(snap, pairs)\n  }\n}";
        let d = check_file(&lib_info("metrics"), src);
        assert_eq!(active(&d, "refit-in-score-pairs"), 1);
        assert_eq!(d.iter().find(|x| x.rule == "refit-in-score-pairs").map(|x| x.line), Some(3));
        let src2 = "fn score_pairs_t(&self, snap: &S, pairs: &[(u32, u32)], threads: usize) -> Vec<f64> {\n  let model = self.fit(snap);\n  vec![]\n}";
        assert_eq!(active(&check_file(&lib_info("metrics"), src2), "refit-in-score-pairs"), 1);
    }

    #[test]
    fn refit_rule_skips_cache_aware_paths_and_other_fns() {
        // `prepare_cached` and `fitted_model` are the cache-aware paths the
        // rule steers toward; `fit`/`prepare` outside score_pairs bodies
        // (the hoisted call sites) are fine.
        let src = "fn score_pairs_cached(&self, snap: &S, pairs: &[(u32, u32)], threads: usize, cache: &mut C) -> Vec<f64> {\n  let m = self.fitted_model(snap, cache, threads);\n  let s = self.prepare_cached(snap, cache);\n  vec![]\n}\nfn hoisted(&self, snap: &S) -> Model { self.fit(snap) }\ntrait Metric {\n  fn score_pairs(&self, snap: &S, pairs: &[(u32, u32)]) -> Vec<f64>;\n}";
        assert_eq!(active(&check_file(&lib_info("metrics"), src), "refit-in-score-pairs"), 0);
    }

    #[test]
    fn refit_rule_exempt_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n  fn score_pairs(m: &M, snap: &S) -> Vec<f64> { m.prepare(snap).score_chunk(snap, &[]) }\n}";
        assert_eq!(active(&check_file(&lib_info("metrics"), src), "refit-in-score-pairs"), 0);
    }

    #[test]
    fn refit_rule_suppressed_by_allow() {
        let src = "fn score_pairs(&self, snap: &S, pairs: &[(u32, u32)]) -> Vec<f64> {\n  // linklens-allow(refit-in-score-pairs): one-shot convenience entry; the engine hoists via prepare_cached\n  self.prepare(snap).score_chunk(snap, pairs)\n}";
        let d = check_file(&lib_info("metrics"), src);
        assert_eq!(active(&d, "refit-in-score-pairs"), 0);
        assert_eq!(
            d.iter().filter(|x| x.rule == "refit-in-score-pairs" && x.suppressed).count(),
            1
        );
    }

    // --- post-hoc-candidate-retain -------------------------------------

    #[test]
    fn posthoc_rule_fires_on_retain_and_filter_over_candidate_pairs() {
        let src = "fn shrink(cands: &mut Vec<(u32, u32)>) { cands.retain(|&(u, v)| u < v); }";
        assert_eq!(active(&check_file(&lib_info("core"), src), "post-hoc-candidate-retain"), 1);
        let src2 = "fn shrink(pairs: &[(u32, u32)]) -> Vec<(u32, u32)> {\n  pairs.iter().copied().filter(|&(u, v)| u < v).collect()\n}";
        let d = check_file(&lib_info("metrics"), src2);
        assert_eq!(active(&d, "post-hoc-candidate-retain"), 1);
        assert_eq!(
            d.iter().find(|x| x.rule == "post-hoc-candidate-retain").map(|x| x.line),
            Some(2)
        );
    }

    #[test]
    fn posthoc_rule_scoped_to_core_and_metrics_lib_code() {
        let src = "fn shrink(cands: &mut Vec<(u32, u32)>) { cands.retain(|&(u, v)| u < v); }";
        assert_eq!(active(&check_file(&lib_info("graph"), src), "post-hoc-candidate-retain"), 0);
        let src_test = "#[cfg(test)]\nmod tests { fn t(pairs: &mut Vec<(u32, u32)>) { pairs.retain(|_| true); } }";
        assert_eq!(
            active(&check_file(&lib_info("core"), src_test), "post-hoc-candidate-retain"),
            0
        );
    }

    #[test]
    fn posthoc_rule_clean_on_unrelated_receivers_and_filter_pairs() {
        // `filter_pairs` is ident-matched, not prefix-matched, and chains
        // whose receivers carry no pair/candidate ident never fire.
        let src = "fn f(metrics: &[u32], s: &S, pairs: &[(u32, u32)]) -> Vec<u32> {\n  let kept = s.filter_pairs(snap, pairs);\n  metrics.iter().filter(|m| **m > 0).copied().collect()\n}";
        assert_eq!(active(&check_file(&lib_info("core"), src), "post-hoc-candidate-retain"), 0);
    }

    #[test]
    fn posthoc_rule_suppressed_by_allow() {
        let src = "fn oracle(pairs: &[(u32, u32)]) -> Vec<(u32, u32)> {\n  // linklens-allow(post-hoc-candidate-retain): this is the post-hoc oracle itself\n  pairs.iter().copied().filter(|&(u, v)| u < v).collect()\n}";
        let d = check_file(&lib_info("core"), src);
        assert_eq!(active(&d, "post-hoc-candidate-retain"), 0);
        assert_eq!(
            d.iter().filter(|x| x.rule == "post-hoc-candidate-retain" && x.suppressed).count(),
            1
        );
    }

    // --- full-trace-materialization ------------------------------------

    #[test]
    fn materialization_rule_fires_on_load_full_and_read_cache_file() {
        let src = "fn sweep(reader: SectionedCacheReader) -> Score {\n  let g = reader.load_full()?;\n  let h = read_cache_file(&path)?;\n  score(&g, &h)\n}";
        let d = check_file(&lib_info("graph"), src);
        assert_eq!(active(&d, "full-trace-materialization"), 2);
        assert_eq!(
            d.iter().find(|x| x.rule == "full-trace-materialization").map(|x| x.line),
            Some(2)
        );
    }

    #[test]
    fn materialization_rule_skips_definitions_and_streaming_reads() {
        let src = "pub fn read_cache(r: R) -> T { parse(r) }\nfn sweep(mut seq: StreamingSequence<R>) { seq.new_edges(0); }";
        assert_eq!(active(&check_file(&lib_info("graph"), src), "full-trace-materialization"), 0);
    }

    #[test]
    fn materialization_rule_suppressed_by_justified_allow() {
        let src = "fn open_small(p: &Path) -> Result<T, E> {\n  // linklens-allow(full-trace-materialization): sanctioned small-trace in-core entry point\n  read_cache(File::open(p)?)\n}";
        let d = check_file(&lib_info("graph"), src);
        assert_eq!(active(&d, "full-trace-materialization"), 0);
        assert_eq!(
            d.iter().filter(|x| x.rule == "full-trace-materialization" && x.suppressed).count(),
            1
        );
    }

    #[test]
    fn materialization_rule_exempt_in_tests_and_non_lib_kinds() {
        let src = "#[cfg(test)]\nmod tests { fn t() { let g = read_cache(&bytes[..]).unwrap(); } }";
        assert_eq!(active(&check_file(&lib_info("graph"), src), "full-trace-materialization"), 0);
        let mut bench = lib_info("bench");
        bench.kind = FileKind::Bench;
        let src_bin = "fn main() { let g = read_cache_file(&path).unwrap(); }";
        assert_eq!(active(&check_file(&bench, src_bin), "full-trace-materialization"), 0);
    }

    // --- missing-forbid-unsafe -----------------------------------------

    #[test]
    fn forbid_rule_fires_on_bare_crate_root() {
        let mut info = lib_info("graph");
        info.is_crate_root = true;
        let d = check_file(&info, "//! Docs only.\npub mod snapshot;");
        assert_eq!(active(&d, "missing-forbid-unsafe"), 1);
    }

    #[test]
    fn forbid_rule_clean_when_present() {
        let mut info = lib_info("graph");
        info.is_crate_root = true;
        let d = check_file(&info, "//! Docs.\n#![forbid(unsafe_code)]\npub mod snapshot;");
        assert_eq!(active(&d, "missing-forbid-unsafe"), 0);
    }

    #[test]
    fn forbid_rule_skips_non_roots() {
        let d = check_file(&lib_info("graph"), "pub fn f() {}");
        assert_eq!(active(&d, "missing-forbid-unsafe"), 0);
    }

    // --- directive auditing --------------------------------------------

    #[test]
    fn bare_allow_raises_unjustified() {
        let src =
            "fn f(o: Option<u32>) -> u32 {\n  // linklens-allow(unwrap-in-lib)\n  o.unwrap()\n}";
        let d = check_file(&lib_info("graph"), src);
        assert_eq!(active(&d, "unjustified-allow"), 1);
        // The suppression itself still applies; only the justification is flagged.
        assert_eq!(active(&d, "unwrap-in-lib"), 0);
    }

    #[test]
    fn unknown_rule_in_allow_is_flagged() {
        let src = "// linklens-allow(no-such-rule): because\nfn f() {}";
        let d = check_file(&lib_info("graph"), src);
        assert_eq!(active(&d, "unknown-rule"), 1);
    }

    #[test]
    fn multi_rule_allow_covers_both() {
        let src = "fn f(n: usize, o: Option<u32>) -> u32 {\n  // linklens-allow(truncating-cast, unwrap-in-lib): n bounded by u32 node ids, option checked above\n  o.unwrap() + n as u32\n}";
        let d = check_file(&lib_info("graph"), src);
        assert_eq!(active(&d, "truncating-cast"), 0);
        assert_eq!(active(&d, "unwrap-in-lib"), 0);
    }

    #[test]
    fn string_and_comment_contents_never_fire_any_rule() {
        let src = concat!(
            "fn f() -> String {\n",
            "  // a.partial_cmp(b).unwrap(); x as u32; println!(\"hi\")\n",
            "  /* o.expect(\"msg\") */\n",
            "  format!(\"{} {}\", \"v.partial_cmp(w).unwrap() as u32\", r#\"eprintln!(\"quoted\")\"#)\n",
            "}\n"
        );
        let d = check_file(&lib_info("graph"), src);
        assert!(d.is_empty(), "{d:?}");
    }
}
