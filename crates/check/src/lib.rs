//! # linklens-check
//!
//! Dependency-light static analysis for the LinkLens workspace. The
//! paper's conclusions rest on correct ranking of real-valued scores and
//! correct CSR snapshot construction; one NaN-unsafe comparator or one
//! truncated offset silently reorders predictions. This crate turns those
//! correctness conventions into machine-enforced rules:
//!
//! * `nan-unsafe-ordering` — `partial_cmp(..).unwrap()/expect()` on float
//!   keys (require `f64::total_cmp`);
//! * `truncating-cast` — `as`-casts to narrow integers in CSR/offset code;
//! * `unwrap-in-lib` — `unwrap()/expect()` in library code of the scoring
//!   substrate (`graph`, `metrics`, `linalg`, `core`);
//! * `missing-forbid-unsafe` — every crate root keeps
//!   `#![forbid(unsafe_code)]`;
//! * `print-in-lib` — `println!`-family output in library crates.
//!
//! On top of those single-file rules, the checker runs a *workspace*
//! analysis: every file is parsed into a symbol index ([`symbols`]), an
//! over-approximate call graph computes the functions reachable from the
//! deterministic surface ([`callgraph`]), and dataflow rules
//! ([`dataflow`]) prove that surface free of unordered `HashMap`/`HashSet`
//! iteration, unpinned float reductions, nondeterministic sources, and
//! unsanctioned panics. Pre-existing findings live in a committed
//! [`baseline`] ratchet that may only shrink.
//!
//! Violations are suppressed per line with
//! `// linklens-allow(rule): justification`; a missing justification, an
//! unknown rule name, or a directive that no longer suppresses anything is
//! itself a violation. The `linklens-check` binary exits nonzero on any
//! active violation, speaks `--json` for CI, `--sarif` for annotation
//! tooling, `--fix-report` for a markdown delta summary, and
//! `--explain <rule>` for the full rationale of any rule.
//!
//! The lexer is hand-rolled (see [`lexer`]) so the shims directory stays
//! small: no `syn`, no proc-macro machinery — tokens are enough for every
//! rule above, and string/comment contents can never false-positive.
//!
//! The static rules point at a runtime audit layer in the scored crates:
//! [`osn_graph::snapshot::Snapshot::validate`] enforces the CSR invariant
//! contract after every incremental advance (under `debug_assertions`, or
//! `--paranoid` in release), and the scoring engine checks every metric's
//! score contract (finite; non-negative where promised) under the same
//! gate.
//!
//! [`osn_graph::snapshot::Snapshot::validate`]:
//!     ../osn_graph/snapshot/struct.Snapshot.html#method.validate

#![forbid(unsafe_code)]

pub mod baseline;
mod callgraph;
mod dataflow;
pub mod lexer;
pub mod report;
pub mod rules;
mod symbols;
pub mod workspace;

use report::RunSummary;
use std::path::Path;
use workspace::FileInfo;

/// Runs the full two-phase analysis over every classified `.rs` file
/// under `root`: phase 1 parses each file into the symbol index and runs
/// the single-file rules; phase 2 builds the workspace call graph,
/// computes the deterministic surface, and runs the dataflow rules over
/// it. Suppression and directive auditing happen once, after both
/// phases, so `stale-allow` judges against everything the checker knows.
pub fn check_workspace(root: &Path) -> std::io::Result<RunSummary> {
    let files = workspace::collect_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for info in files {
        let src = std::fs::read_to_string(root.join(&info.path))?;
        sources.push((info, src));
    }
    Ok(check_sources(sources))
}

/// The pure core of [`check_workspace`]: same two-phase analysis over
/// in-memory sources. Fixture tests drive this directly.
pub fn check_sources(sources: Vec<(FileInfo, String)>) -> RunSummary {
    let files_checked = sources.len();

    // Phase 1: parse everything once; run the single-file rules.
    let parsed: Vec<symbols::ParsedFile> =
        sources.iter().map(|(info, src)| symbols::parse_file(info, src)).collect();
    let mut per_file: Vec<Vec<rules::Diagnostic>> =
        parsed.iter().map(|p| rules::phase1(&p.info, &p.lexed.tokens, &p.mask)).collect();

    // Phase 2: deterministic surface over the whole workspace, dataflow
    // rules over every in-scope file.
    let surface = callgraph::surface(&parsed);
    for (p, diags) in parsed.iter().zip(per_file.iter_mut()) {
        if callgraph::in_scope(&p.info) {
            dataflow::check_file(p, &surface, diags);
        }
    }

    // Suppressions + directive audit, with full knowledge of both phases.
    let mut diagnostics = Vec::new();
    for (p, mut diags) in parsed.iter().zip(per_file) {
        let allows = rules::parse_allows(&p.lexed.comments);
        rules::finish_file(&p.info, &p.lexed.tokens, &p.mask, &allows, &mut diags, true);
        diagnostics.extend(diags);
    }
    RunSummary { files_checked, diagnostics }
}
