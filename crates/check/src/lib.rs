//! # linklens-check
//!
//! Dependency-light static analysis for the LinkLens workspace. The
//! paper's conclusions rest on correct ranking of real-valued scores and
//! correct CSR snapshot construction; one NaN-unsafe comparator or one
//! truncated offset silently reorders predictions. This crate turns those
//! correctness conventions into machine-enforced rules:
//!
//! * `nan-unsafe-ordering` — `partial_cmp(..).unwrap()/expect()` on float
//!   keys (require `f64::total_cmp`);
//! * `truncating-cast` — `as`-casts to narrow integers in CSR/offset code;
//! * `unwrap-in-lib` — `unwrap()/expect()` in library code of the scoring
//!   substrate (`graph`, `metrics`, `linalg`, `core`);
//! * `missing-forbid-unsafe` — every crate root keeps
//!   `#![forbid(unsafe_code)]`;
//! * `print-in-lib` — `println!`-family output in library crates.
//!
//! Violations are suppressed per line with
//! `// linklens-allow(rule): justification`; a missing justification or an
//! unknown rule name is itself a violation. The `linklens-check` binary
//! exits nonzero on any active violation, speaks `--json` for CI, and
//! `--fix-report` for a markdown delta summary.
//!
//! The lexer is hand-rolled (see [`lexer`]) so the shims directory stays
//! small: no `syn`, no proc-macro machinery — tokens are enough for every
//! rule above, and string/comment contents can never false-positive.
//!
//! The static rules point at a runtime audit layer in the scored crates:
//! [`osn_graph::snapshot::Snapshot::validate`] enforces the CSR invariant
//! contract after every incremental advance (under `debug_assertions`, or
//! `--paranoid` in release), and the scoring engine checks every metric's
//! score contract (finite; non-negative where promised) under the same
//! gate.
//!
//! [`osn_graph::snapshot::Snapshot::validate`]:
//!     ../osn_graph/snapshot/struct.Snapshot.html#method.validate

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

use report::RunSummary;
use std::path::Path;

/// Runs every rule over every classified `.rs` file under `root`.
pub fn check_workspace(root: &Path) -> std::io::Result<RunSummary> {
    let files = workspace::collect_files(root)?;
    let mut diagnostics = Vec::new();
    let files_checked = files.len();
    for info in &files {
        let src = std::fs::read_to_string(root.join(&info.path))?;
        diagnostics.extend(rules::check_file(info, &src));
    }
    Ok(RunSummary { files_checked, diagnostics })
}
