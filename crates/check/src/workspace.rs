//! Workspace discovery: finds every `.rs` file under the repo root and
//! classifies it so rules can scope themselves (library vs. binary vs.
//! test code, shim vs. first-party crate, crate roots).

use std::path::{Path, PathBuf};

/// What kind of compilation target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`src/` of a lib crate, excluding `src/bin/`).
    Lib,
    /// Binary code (`src/bin/*.rs`, `src/main.rs`).
    Bin,
    /// Integration tests (`tests/`).
    Test,
    /// Benchmarks (`benches/`).
    Bench,
    /// Examples (`examples/`).
    Example,
}

/// One classified source file.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Path relative to the workspace root, with `/` separators.
    pub path: String,
    /// Crate the file belongs to: `"graph"`, `"core"`, …, `"linklens"`
    /// for the root package, `"shims/rand"` for vendored shims.
    pub krate: String,
    pub kind: FileKind,
    /// Whether this file is a crate root (`lib.rs`, `main.rs`, or a
    /// `src/bin/*.rs` file) — the files `#![forbid(unsafe_code)]` must
    /// live in.
    pub is_crate_root: bool,
    /// Vendored dependency shim (reduced rule set applies).
    pub is_shim: bool,
}

/// Classifies one workspace-relative path; `None` for paths no rule cares
/// about (non-Rust files are filtered before this is called).
pub fn classify(rel: &str) -> Option<FileInfo> {
    let parts: Vec<&str> = rel.split('/').collect();
    let file = *parts.last()?;
    let info = |krate: &str, kind: FileKind, is_crate_root: bool, is_shim: bool| {
        Some(FileInfo {
            path: rel.to_string(),
            krate: krate.to_string(),
            kind,
            is_crate_root,
            is_shim,
        })
    };
    match parts.as_slice() {
        ["crates", k, "src", "bin", _] => info(k, FileKind::Bin, true, false),
        ["crates", k, "src", ..] => {
            let root = parts.len() == 4 && (file == "lib.rs" || file == "main.rs");
            let kind =
                if file == "main.rs" && parts.len() == 4 { FileKind::Bin } else { FileKind::Lib };
            info(k, kind, root, false)
        }
        ["crates", k, "tests", ..] => info(k, FileKind::Test, false, false),
        ["crates", k, "benches", ..] => info(k, FileKind::Bench, false, false),
        ["crates", k, "examples", ..] => info(k, FileKind::Example, false, false),
        ["shims", k, "src", ..] => {
            let root = parts.len() == 4 && file == "lib.rs";
            info(&format!("shims/{k}"), FileKind::Lib, root, true)
        }
        ["shims", k, "tests", ..] => info(&format!("shims/{k}"), FileKind::Test, false, true),
        ["src", "bin", _] => info("linklens", FileKind::Bin, true, false),
        ["src", ..] => {
            let root = parts.len() == 2 && (file == "lib.rs" || file == "main.rs");
            info("linklens", FileKind::Lib, root, false)
        }
        ["tests", ..] => info("linklens", FileKind::Test, false, false),
        ["benches", ..] => info("linklens", FileKind::Bench, false, false),
        ["examples", ..] => info("linklens", FileKind::Example, false, false),
        _ => None,
    }
}

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "results"];

/// Walks `root` and returns every classified `.rs` file, sorted by path
/// for deterministic output.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<FileInfo>> {
    let mut rel_paths = Vec::new();
    walk(root, &mut PathBuf::new(), &mut rel_paths)?;
    rel_paths.sort();
    Ok(rel_paths.iter().filter_map(|p| classify(p)).collect())
}

fn walk(root: &Path, rel: &mut PathBuf, out: &mut Vec<String>) -> std::io::Result<()> {
    let dir = root.join(&*rel);
    let mut entries: Vec<_> = std::fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            rel.push(name.as_ref());
            walk(root, rel, out)?;
            rel.pop();
        } else if ty.is_file() && name.ends_with(".rs") {
            let mut p = rel.clone();
            p.push(name.as_ref());
            // Normalize to `/` so diagnostics are stable across platforms.
            out.push(p.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        let g = classify("crates/graph/src/snapshot.rs").expect("lib file");
        assert_eq!(g.krate, "graph");
        assert_eq!(g.kind, FileKind::Lib);
        assert!(!g.is_crate_root && !g.is_shim);

        let root = classify("crates/graph/src/lib.rs").expect("crate root");
        assert!(root.is_crate_root);

        let bin = classify("crates/bench/src/bin/scalecheck.rs").expect("bench bin");
        assert_eq!(bin.kind, FileKind::Bin);
        assert!(bin.is_crate_root);

        let t = classify("crates/graph/tests/incremental.rs").expect("test file");
        assert_eq!(t.kind, FileKind::Test);

        let shim = classify("shims/rand/src/lib.rs").expect("shim root");
        assert!(shim.is_shim && shim.is_crate_root);
        assert_eq!(shim.krate, "shims/rand");

        let main_lib = classify("src/lib.rs").expect("root lib");
        assert_eq!(main_lib.krate, "linklens");
        assert!(main_lib.is_crate_root);

        let main_bin = classify("src/bin/linklens.rs").expect("root bin");
        assert_eq!(main_bin.kind, FileKind::Bin);
        assert!(main_bin.is_crate_root);

        let ex = classify("examples/quickstart.rs").expect("example");
        assert_eq!(ex.kind, FileKind::Example);

        assert!(classify("README.md").is_none());
        assert!(classify("results/figs/plot.rs").is_none());
    }
}
