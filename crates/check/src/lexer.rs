//! A hand-rolled Rust lexer sized for lint rules.
//!
//! The rules in [`crate::rules`] only need a token stream that is *safe
//! against false positives*: string literals, character literals, and
//! comments must never leak their contents into the identifier stream
//! (`"partial_cmp(x).unwrap()"` inside a string is data, not code). The
//! lexer therefore handles the full literal surface the workspace uses —
//! line and nested block comments, plain/raw/byte strings, char literals
//! vs. lifetimes, numeric literals with fractional parts — while reducing
//! everything it tokenizes to five coarse kinds. It does **not** parse:
//! rules pattern-match the token stream directly, which keeps the crate
//! dependency-light (no `syn`, no new shims).

/// Coarse token kinds; literal *contents* are deliberately dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (including `as`, `fn`, …).
    Ident(String),
    /// Single punctuation character (`.`, `(`, `#`, …).
    Punct(char),
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (integer or float, any base/suffix).
    Num,
}

/// One token plus the 1-indexed line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// One comment (line or block), with its text and line span. Comments are
/// kept out of the token stream but retained for `linklens-allow`
/// directive parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Line the comment starts on.
    pub line: u32,
    /// Line the comment ends on (equal to `line` for line comments).
    pub end_line: u32,
    /// Comment text without the `//` / `/*` framing.
    pub text: String,
}

/// The lexer's full output for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes one source file. Never fails: unterminated literals consume
/// the rest of the file, which is the forgiving behavior a linter wants.
pub fn lex(src: &str) -> Lexed {
    let c: Vec<char> = src.chars().collect();
    let n = c.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < n {
        let ch = c[i];
        if ch == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if ch.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (covers `///` and `//!` doc comments too).
        if ch == '/' && i + 1 < n && c[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && c[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment { line, end_line: line, text: c[start..j].iter().collect() });
            i = j;
            continue;
        }
        // Block comment, nested per Rust's rules.
        if ch == '/' && i + 1 < n && c[i + 1] == '*' {
            let start_line = line;
            let text_start = i + 2;
            let mut depth = 1u32;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if c[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if c[j] == '/' && j + 1 < n && c[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if c[j] == '*' && j + 1 < n && c[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let text_end = if depth == 0 { j - 2 } else { j }.max(text_start);
            out.comments.push(Comment {
                line: start_line,
                end_line: line,
                text: c[text_start..text_end].iter().collect(),
            });
            i = j;
            continue;
        }
        // Plain string literal.
        if ch == '"' {
            let start_line = line;
            i = skip_string(&c, i, &mut line);
            out.tokens.push(Token { tok: Tok::Str, line: start_line });
            continue;
        }
        // Raw strings (`r"…"`, `r#"…"#`), byte strings (`b"…"`, `br#"…"#`),
        // byte chars (`b'x'`), and raw identifiers (`r#match`) all start
        // with `r` or `b`; disambiguate before the generic ident path.
        if ch == 'r' || ch == 'b' {
            let mut j = i + 1;
            if ch == 'b' && j < n && c[j] == 'r' {
                j += 1;
            }
            let hashes_start = j;
            while j < n && c[j] == '#' {
                j += 1;
            }
            let hashes = j - hashes_start;
            let has_r = ch == 'r' || (i + 1 < n && c[i + 1] == 'r');
            if j < n && c[j] == '"' && (has_r || hashes == 0) {
                let start_line = line;
                if has_r {
                    i = skip_raw_string(&c, j + 1, hashes, &mut line);
                } else {
                    i = skip_string(&c, j, &mut line);
                }
                out.tokens.push(Token { tok: Tok::Str, line: start_line });
                continue;
            }
            if ch == 'b' && i + 1 < n && c[i + 1] == '\'' {
                let start_line = line;
                i = skip_char(&c, i + 1, &mut line);
                out.tokens.push(Token { tok: Tok::Char, line: start_line });
                continue;
            }
            if ch == 'r' && hashes == 1 && j < n && is_ident_start(c[j]) {
                // Raw identifier: lex the ident part, drop the `r#`.
                let mut k = j;
                while k < n && is_ident_continue(c[k]) {
                    k += 1;
                }
                out.tokens.push(Token { tok: Tok::Ident(c[j..k].iter().collect()), line });
                i = k;
                continue;
            }
            // Fall through: a plain identifier that merely starts with r/b.
        }
        // Char literal vs. lifetime.
        if ch == '\'' {
            let lifetime =
                i + 1 < n && (is_ident_start(c[i + 1])) && !(i + 2 < n && c[i + 2] == '\'');
            if lifetime {
                let mut j = i + 1;
                while j < n && is_ident_continue(c[j]) {
                    j += 1;
                }
                i = j; // lifetimes carry no lint signal; drop them
                continue;
            }
            let start_line = line;
            i = skip_char(&c, i, &mut line);
            out.tokens.push(Token { tok: Tok::Char, line: start_line });
            continue;
        }
        // Numeric literal: consume alphanumerics plus one fractional part.
        // Exponent signs (`1e-4`) split into Num Punct Num, which is fine —
        // no rule interprets numbers.
        if ch.is_ascii_digit() {
            let start_line = line;
            let mut j = i;
            while j < n && (c[j].is_ascii_alphanumeric() || c[j] == '_') {
                j += 1;
            }
            if j < n && c[j] == '.' && j + 1 < n && c[j + 1].is_ascii_digit() {
                j += 1;
                while j < n && (c[j].is_ascii_alphanumeric() || c[j] == '_') {
                    j += 1;
                }
            }
            out.tokens.push(Token { tok: Tok::Num, line: start_line });
            i = j;
            continue;
        }
        if is_ident_start(ch) {
            let mut j = i;
            while j < n && is_ident_continue(c[j]) {
                j += 1;
            }
            out.tokens.push(Token { tok: Tok::Ident(c[i..j].iter().collect()), line });
            i = j;
            continue;
        }
        out.tokens.push(Token { tok: Tok::Punct(ch), line });
        i += 1;
    }
    out
}

/// Skips a `"…"`-style string starting at the opening quote; returns the
/// index past the closing quote. Backslash escapes are honored; embedded
/// newlines advance `line`.
fn skip_string(c: &[char], open: usize, line: &mut u32) -> usize {
    let n = c.len();
    let mut j = open + 1;
    while j < n {
        match c[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    n
}

/// Skips a raw string body starting just past the opening quote; the
/// terminator is a quote followed by `hashes` `#` characters.
fn skip_raw_string(c: &[char], body: usize, hashes: usize, line: &mut u32) -> usize {
    let n = c.len();
    let mut j = body;
    while j < n {
        if c[j] == '\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if c[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && seen < hashes && c[k] == '#' {
                k += 1;
                seen += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    n
}

/// Skips a char literal starting at the opening quote; returns the index
/// past the closing quote. Handles `'\n'`, `'\''`, and `'\u{…}'`.
fn skip_char(c: &[char], open: usize, line: &mut u32) -> usize {
    let n = c.len();
    let mut j = open + 1;
    if j < n && c[j] == '\\' {
        j += 1;
        if j + 1 < n && c[j] == 'u' && c[j + 1] == '{' {
            while j < n && c[j] != '}' {
                j += 1;
            }
            j += 1;
        } else {
            j += 1;
        }
    } else if j < n {
        if c[j] == '\n' {
            *line += 1;
        }
        j += 1;
    }
    if j < n && c[j] == '\'' {
        j + 1
    } else {
        j
    }
}

/// Marks every token that belongs to test-only code: items annotated with
/// an attribute whose token stream mentions `test` (so `#[test]`,
/// `#[cfg(test)]`, and `#[cfg(any(test, …))]` all match) — unless the
/// attribute also mentions `not` (`#[cfg(not(test))]` is live code and is
/// conservatively kept in scope). The mask covers the attribute itself,
/// any stacked attributes after it, and the annotated item through its
/// closing brace or semicolon.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let at =
        |i: usize, p: char| matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(q)) if *q == p);
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if at(i, '#') && at(i + 1, '[') {
            let (attr_end, is_test) = scan_attr(tokens, i + 1);
            if !is_test {
                i = attr_end;
                continue;
            }
            let mut j = attr_end;
            while at(j, '#') && at(j + 1, '[') {
                j = scan_attr(tokens, j + 1).0;
            }
            // Find the item body: the first `{` or `;` outside signature
            // parentheses/brackets.
            let mut nest = 0i32;
            while j < tokens.len() {
                match tokens[j].tok {
                    Tok::Punct('(') | Tok::Punct('[') => nest += 1,
                    Tok::Punct(')') | Tok::Punct(']') => nest -= 1,
                    Tok::Punct('{') | Tok::Punct(';') if nest == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if at(j, '{') {
                let mut depth = 0i32;
                while j < tokens.len() {
                    match tokens[j].tok {
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            } else if j < tokens.len() {
                j += 1; // past the `;`
            }
            for m in &mut mask[i..j.min(tokens.len())] {
                *m = true;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

/// Scans an attribute whose `[` is at `open`; returns the index past the
/// matching `]` and whether the attribute marks test-only code.
fn scan_attr(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut j = open;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, saw_test && !saw_not);
                }
            }
            Tok::Ident(s) if s == "test" => saw_test = true,
            Tok::Ident(s) if s == "not" => saw_not = true,
            _ => {}
        }
        j += 1;
    }
    (j, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_do_not_leak_identifiers() {
        let src = r##"let s = "partial_cmp(x).unwrap()"; let r = r#"println!("hi")"#;"##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "r"]);
    }

    #[test]
    fn comments_do_not_leak_identifiers() {
        let src = "// partial_cmp(a).unwrap()\n/* println! *//* nested /* unwrap() */ still */ let x = 1;";
        assert_eq!(idents(src), vec!["let", "x"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 3);
        assert!(lexed.comments[0].text.contains("partial_cmp"));
    }

    #[test]
    fn char_literals_and_lifetimes_are_distinguished() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(chars, 1, "one char literal, lifetimes dropped");
        assert!(idents(src).contains(&"str".to_string()));
    }

    #[test]
    fn escaped_chars_and_unicode() {
        let src = r"let a = '\''; let b = '\u{1F600}'; let c = b'\n';";
        let lexed = lex(src);
        let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(chars, 3);
        assert_eq!(idents(src), vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn raw_identifiers_lex_as_plain() {
        assert_eq!(idents("r#match + rb_foo + break_even"), vec!["match", "rb_foo", "break_even"]);
    }

    #[test]
    fn line_numbers_track_multiline_literals() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.tok == Tok::Ident("b".into())).expect("ident b");
        assert_eq!(b.line, 3);
    }

    #[test]
    fn float_method_calls_split_correctly() {
        // `1.0.max(2.0)` must lex as Num . Ident ( Num ), not swallow `max`.
        let src = "let x = 1.0.max(2.0); let y = 1e-4;";
        assert_eq!(idents(src), vec!["let", "x", "max", "let", "y"]);
    }

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let src = "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { b.unwrap(); } }";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let masked: Vec<&str> = lexed
            .tokens
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| m)
            .filter_map(|(t, _)| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert!(masked.contains(&"tests"));
        assert!(masked.contains(&"b"));
        assert!(!masked.contains(&"live"));
    }

    #[test]
    fn test_mask_covers_test_fns_and_stacked_attrs() {
        let src =
            "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() { x.unwrap(); }\nfn live() {}";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let live = lexed
            .tokens
            .iter()
            .zip(&mask)
            .find(|(t, _)| t.tok == Tok::Ident("live".into()))
            .expect("live fn");
        assert!(!live.1, "code after the test fn is live again");
        let x = lexed
            .tokens
            .iter()
            .zip(&mask)
            .find(|(t, _)| t.tok == Tok::Ident("x".into()))
            .expect("x in test body");
        assert!(x.1, "test body is masked");
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        assert!(mask.iter().all(|&m| !m), "cfg(not(test)) code is live");
    }
}
