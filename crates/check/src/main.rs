//! `linklens-check` — the workspace lint pass.
//!
//! ```text
//! linklens-check [ROOT] [--json] [--fix-report]
//! ```
//!
//! Checks every `.rs` file under ROOT (default: the workspace root this
//! binary was built from, else the current directory) against the
//! repo-specific rules in [`linklens_check::rules`]. Exits 0 when clean,
//! 1 on any active violation, 2 on usage or I/O errors.
//!
//! * `--json` — machine-readable report on stdout (for the CI lint job);
//! * `--fix-report` — markdown summary of violations by rule and crate,
//!   ready to paste into a PR description.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let fix_report = args.iter().any(|a| a == "--fix-report");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if let Some(bad) = args
        .iter()
        .find(|a| a.starts_with("--") && !matches!(a.as_str(), "--json" | "--fix-report"))
    {
        eprintln!("unknown flag {bad}\nusage: linklens-check [ROOT] [--json] [--fix-report]");
        exit(2);
    }
    if positional.len() > 1 {
        eprintln!(
            "at most one ROOT argument\nusage: linklens-check [ROOT] [--json] [--fix-report]"
        );
        exit(2);
    }

    let root = positional.first().map_or_else(default_root, PathBuf::from);
    let run = match linklens_check::check_workspace(&root) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("linklens-check: cannot scan {}: {e}", root.display());
            exit(2);
        }
    };

    if fix_report {
        print!("{}", linklens_check::report::render_markdown(&run));
    } else if json {
        println!("{}", linklens_check::report::render_json(&run));
    } else {
        print!("{}", linklens_check::report::render_text(&run));
    }
    exit(i32::from(run.has_violations()));
}

/// The workspace this binary was compiled from (two levels above the
/// crate's manifest), falling back to the current directory when that
/// tree no longer exists (e.g. an installed binary).
fn default_root() -> PathBuf {
    let compiled_from = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    if compiled_from.join("Cargo.toml").exists() {
        compiled_from
    } else {
        PathBuf::from(".")
    }
}
