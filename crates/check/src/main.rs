//! `linklens-check` — the workspace lint pass.
//!
//! ```text
//! linklens-check [ROOT] [--json] [--fix-report] [--baseline FILE]
//!                [--write-baseline FILE] [--sarif FILE]
//! linklens-check --explain RULE
//! ```
//!
//! Checks every `.rs` file under ROOT (default: the workspace root this
//! binary was built from, else the current directory) with the two-phase
//! analysis in [`linklens_check`]. Exits 0 when clean, 1 on any active
//! violation, 2 on usage or I/O errors.
//!
//! * `--json` — machine-readable report on stdout (for the CI lint job);
//! * `--fix-report` — markdown summary of violations by rule and crate,
//!   ready to paste into a PR description;
//! * `--baseline FILE` — apply the committed ratchet: findings recorded
//!   there are reported but do not fail; new findings (or growth within a
//!   bucket) still do;
//! * `--write-baseline FILE` — regenerate the ratchet from the current
//!   findings (after fixing, to tighten it);
//! * `--sarif FILE` — additionally write a SARIF 2.1.0 report for CI
//!   annotation tooling;
//! * `--explain RULE` — print the rule's contract, rationale, and a fix
//!   example from the same table the checker enforces.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::exit;

const USAGE: &str = "usage: linklens-check [ROOT] [--json] [--fix-report] \
                     [--baseline FILE] [--write-baseline FILE] [--sarif FILE]\n\
                     \x20      linklens-check --explain RULE";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut fix_report = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline_path: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut explain: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut take_value = |flag: &str| match it.next() {
            Some(v) => v,
            None => {
                eprintln!("{flag} needs a value\n{USAGE}");
                exit(2);
            }
        };
        match arg.as_str() {
            "--json" => json = true,
            "--fix-report" => fix_report = true,
            "--baseline" => baseline_path = Some(PathBuf::from(take_value("--baseline"))),
            "--write-baseline" => {
                write_baseline_path = Some(PathBuf::from(take_value("--write-baseline")));
            }
            "--sarif" => sarif_path = Some(PathBuf::from(take_value("--sarif"))),
            "--explain" => explain = Some(take_value("--explain")),
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}\n{USAGE}");
                exit(2);
            }
            _ => positional.push(arg),
        }
    }

    if let Some(rule) = explain {
        exit(run_explain(&rule));
    }

    if positional.len() > 1 {
        eprintln!("at most one ROOT argument\n{USAGE}");
        exit(2);
    }

    let root = positional.first().map_or_else(default_root, PathBuf::from);
    let mut run = match linklens_check::check_workspace(&root) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("linklens-check: cannot scan {}: {e}", root.display());
            exit(2);
        }
    };

    let mut tighten_notes = Vec::new();
    if let Some(path) = &baseline_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("linklens-check: cannot read baseline {}: {e}", path.display());
                exit(2);
            }
        };
        let base = match linklens_check::baseline::Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("linklens-check: {e}");
                exit(2);
            }
        };
        tighten_notes = linklens_check::baseline::apply(&mut run, &base);
    }

    if let Some(path) = &write_baseline_path {
        let text = linklens_check::baseline::Baseline::render(&run);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("linklens-check: cannot write baseline {}: {e}", path.display());
            exit(2);
        }
    }

    if let Some(path) = &sarif_path {
        let text = linklens_check::report::render_sarif(&run);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("linklens-check: cannot write SARIF {}: {e}", path.display());
            exit(2);
        }
    }

    if fix_report {
        print!("{}", linklens_check::report::render_markdown(&run));
    } else if json {
        println!("{}", linklens_check::report::render_json(&run));
    } else {
        print!("{}", linklens_check::report::render_text(&run));
    }
    for note in &tighten_notes {
        eprintln!("linklens-check: {note}");
    }
    exit(i32::from(run.has_violations()));
}

/// `--explain RULE`, straight from the rule table the checker enforces.
fn run_explain(rule: &str) -> i32 {
    match linklens_check::rules::spec(rule) {
        Some(r) => {
            println!("{}\n", r.name);
            println!("contract:\n  {}\n", r.contract);
            println!("why:\n  {}\n", r.rationale);
            println!("fix:");
            for line in r.fix.lines() {
                println!("  {line}");
            }
            0
        }
        None => {
            eprintln!("unknown rule `{rule}`; known rules:");
            for r in linklens_check::rules::RULES {
                eprintln!("  {}", r.name);
            }
            2
        }
    }
}

/// The workspace this binary was compiled from (two levels above the
/// crate's manifest), falling back to the current directory when that
/// tree no longer exists (e.g. an installed binary).
fn default_root() -> PathBuf {
    let compiled_from = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    if compiled_from.join("Cargo.toml").exists() {
        compiled_from
    } else {
        PathBuf::from(".")
    }
}
