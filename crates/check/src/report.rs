//! Rendering diagnostics: human text, machine `--json`, SARIF for CI
//! annotations, and the `--fix-report` markdown summary future PRs paste
//! into descriptions. All renderers return strings; printing is the
//! binary's job (`print-in-lib` applies to this crate too).

use crate::rules::{Diagnostic, RULES};
use std::collections::BTreeMap;

/// Aggregated result of one checker run.
#[derive(Debug)]
pub struct RunSummary {
    pub files_checked: usize,
    pub diagnostics: Vec<Diagnostic>,
}

impl RunSummary {
    /// Diagnostics that fail the run (not covered by an allow, not
    /// absorbed by the baseline ratchet).
    pub fn active(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.suppressed && !d.baselined)
    }

    /// Allow-covered findings, kept visible for reporting.
    pub fn suppressed(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.suppressed)
    }

    /// Baseline-absorbed findings: enumerated, may only shrink.
    pub fn baselined(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.suppressed && d.baselined)
    }

    pub fn has_violations(&self) -> bool {
        self.active().next().is_some()
    }
}

/// `path:line: [rule] message` lines plus a closing tally.
pub fn render_text(run: &RunSummary) -> String {
    let mut out = String::new();
    for d in run.active() {
        out.push_str(&format!("{}:{}: [{}] {}\n", d.path, d.line, d.rule, d.message));
    }
    for d in run.baselined() {
        out.push_str(&format!("{}:{}: [{}] (baselined) {}\n", d.path, d.line, d.rule, d.message));
    }
    let active = run.active().count();
    let suppressed = run.suppressed().count();
    let baselined = run.baselined().count();
    out.push_str(&format!(
        "linklens-check: {} file(s), {} violation(s), {} suppressed by linklens-allow, {} baselined\n",
        run.files_checked, active, suppressed, baselined
    ));
    out
}

/// Stable JSON for CI and tooling.
pub fn render_json(run: &RunSummary) -> String {
    let entry = |d: &Diagnostic| {
        serde_json::json!({
            "rule": d.rule,
            "path": d.path,
            "line": d.line,
            "message": d.message,
        })
    };
    let violations: Vec<_> = run.active().map(entry).collect();
    let suppressed: Vec<_> = run.suppressed().map(entry).collect();
    let baselined: Vec<_> = run.baselined().map(entry).collect();
    let report = serde_json::json!({
        "tool": "linklens-check",
        "files_checked": run.files_checked,
        "violation_count": violations.len(),
        "suppressed_count": suppressed.len(),
        "baselined_count": baselined.len(),
        "violations": violations,
        "suppressed": suppressed,
        "baselined": baselined,
    });
    serde_json::to_string_pretty(&report).unwrap_or_else(|_| "{}".to_string())
}

/// SARIF 2.1.0, minimal profile: enough for GitHub code-scanning style
/// annotation and for archival as a CI artifact. Active findings are
/// `error`, baseline-absorbed ones `note`; suppressed findings are
/// omitted (they are policy, not problems).
pub fn render_sarif(run: &RunSummary) -> String {
    let rules: Vec<_> = RULES
        .iter()
        .map(|r| {
            serde_json::json!({
                "id": r.name,
                "shortDescription": serde_json::json!({ "text": r.contract }),
            })
        })
        .collect();
    let result = |d: &Diagnostic, level: &str| {
        let region = serde_json::json!({ "startLine": d.line });
        let artifact = serde_json::json!({ "uri": d.path });
        let physical = serde_json::json!({
            "artifactLocation": artifact,
            "region": region,
        });
        let location = serde_json::json!({ "physicalLocation": physical });
        serde_json::json!({
            "ruleId": d.rule,
            "level": level,
            "message": serde_json::json!({ "text": d.message }),
            "locations": serde_json::json!([location]),
        })
    };
    let mut results: Vec<_> = run.active().map(|d| result(d, "error")).collect();
    results.extend(run.baselined().map(|d| result(d, "note")));
    let driver = serde_json::json!({
        "name": "linklens-check",
        "rules": rules,
    });
    let sarif_run = serde_json::json!({
        "tool": serde_json::json!({ "driver": driver }),
        "results": results,
    });
    let sarif = serde_json::json!({
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": serde_json::json!([sarif_run]),
    });
    serde_json::to_string_pretty(&sarif).unwrap_or_else(|_| "{}".to_string())
}

/// Crate a diagnostic path belongs to, for the per-crate breakdown.
fn crate_of(path: &str) -> String {
    crate::workspace::classify(path).map_or_else(|| "(other)".to_string(), |i| i.krate)
}

/// Markdown summary by rule and crate: the `--fix-report` payload.
pub fn render_markdown(run: &RunSummary) -> String {
    let mut out = String::new();
    out.push_str("## linklens-check report\n\n");
    let active = run.active().count();
    let suppressed = run.suppressed().count();
    let baselined = run.baselined().count();
    out.push_str(&format!(
        "{} file(s) checked — **{} violation(s)**, {} suppressed by `linklens-allow`, {} baselined.\n\n",
        run.files_checked, active, suppressed, baselined
    ));

    // rule -> (active, suppressed)
    let mut by_rule: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    // (crate, rule) -> count (active only)
    let mut by_crate: BTreeMap<(String, &str), usize> = BTreeMap::new();
    for d in &run.diagnostics {
        let slot = by_rule.entry(d.rule).or_default();
        if d.suppressed || d.baselined {
            slot.1 += 1;
        } else {
            slot.0 += 1;
            *by_crate.entry((crate_of(&d.path), d.rule)).or_default() += 1;
        }
    }

    out.push_str("| rule | violations | suppressed/baselined |\n|---|---:|---:|\n");
    for r in RULES {
        let (a, s) = by_rule.get(r.name).copied().unwrap_or((0, 0));
        out.push_str(&format!("| `{}` | {a} | {s} |\n", r.name));
    }
    out.push('\n');

    if by_crate.is_empty() {
        out.push_str("No active violations — the workspace is clean.\n");
    } else {
        out.push_str(
            "### Active violations by crate\n\n| crate | rule | count |\n|---|---|---:|\n",
        );
        for ((krate, rule), count) in &by_crate {
            out.push_str(&format!("| `{krate}` | `{rule}` | {count} |\n"));
        }
        out.push('\n');
        out.push_str("### Locations\n\n");
        for d in run.active() {
            out.push_str(&format!("- `{}:{}` — `{}`\n", d.path, d.line, d.rule));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunSummary {
        RunSummary {
            files_checked: 3,
            diagnostics: vec![
                Diagnostic {
                    rule: "unwrap-in-lib",
                    path: "crates/graph/src/io.rs".into(),
                    line: 10,
                    message: "boom".into(),
                    suppressed: false,
                    baselined: false,
                },
                Diagnostic {
                    rule: "print-in-lib",
                    path: "crates/core/src/report.rs".into(),
                    line: 4,
                    message: "print".into(),
                    suppressed: true,
                    baselined: false,
                },
                Diagnostic {
                    rule: "truncating-cast",
                    path: "crates/graph/src/csr.rs".into(),
                    line: 7,
                    message: "old debt".into(),
                    suppressed: false,
                    baselined: true,
                },
            ],
        }
    }

    #[test]
    fn text_report_lists_active_only() {
        let text = render_text(&sample());
        assert!(text.contains("crates/graph/src/io.rs:10: [unwrap-in-lib] boom"));
        assert!(!text.contains("report.rs:4"));
        assert!(text.contains("csr.rs:7: [truncating-cast] (baselined) old debt"));
        assert!(text.contains("1 violation(s), 1 suppressed"));
        assert!(text.contains("1 baselined"));
    }

    #[test]
    fn json_report_round_trips() {
        let json = render_json(&sample());
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid json");
        assert_eq!(v.get("violation_count"), Some(&serde_json::Value::Number(1.0)));
        assert_eq!(v.get("suppressed_count"), Some(&serde_json::Value::Number(1.0)));
        assert_eq!(v.get("baselined_count"), Some(&serde_json::Value::Number(1.0)));
        let first = match v.get("violations") {
            Some(serde_json::Value::Array(items)) => &items[0],
            other => panic!("violations should be an array, got {other:?}"),
        };
        assert_eq!(first.get("rule"), Some(&serde_json::Value::String("unwrap-in-lib".into())));
    }

    #[test]
    fn sarif_report_levels_active_vs_baselined() {
        let sarif = render_sarif(&sample());
        let v: serde_json::Value = serde_json::from_str(&sarif).expect("valid sarif json");
        assert_eq!(v.get("version"), Some(&serde_json::Value::String("2.1.0".into())));
        let runs = match v.get("runs") {
            Some(serde_json::Value::Array(items)) => items,
            other => panic!("runs should be an array, got {other:?}"),
        };
        let results = match runs[0].get("results") {
            Some(serde_json::Value::Array(items)) => items,
            other => panic!("results should be an array, got {other:?}"),
        };
        // active error + baselined note; the suppressed finding is absent.
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("level"), Some(&serde_json::Value::String("error".into())));
        assert_eq!(results[1].get("level"), Some(&serde_json::Value::String("note".into())));
        // Every rule in the table is declared to SARIF consumers.
        let driver = runs[0].get("tool").and_then(|t| t.get("driver")).expect("driver");
        let rules = match driver.get("rules") {
            Some(serde_json::Value::Array(items)) => items,
            other => panic!("rules should be an array, got {other:?}"),
        };
        assert_eq!(rules.len(), RULES.len());
    }

    #[test]
    fn markdown_report_breaks_down_by_rule_and_crate() {
        let md = render_markdown(&sample());
        assert!(md.contains("## linklens-check report"));
        assert!(md.contains("| `unwrap-in-lib` | 1 | 0 |"));
        assert!(md.contains("| `print-in-lib` | 0 | 1 |"));
        assert!(md.contains("| `graph` | `unwrap-in-lib` | 1 |"));
    }

    #[test]
    fn clean_run_reports_clean() {
        let run = RunSummary { files_checked: 5, diagnostics: vec![] };
        assert!(!run.has_violations());
        assert!(render_markdown(&run).contains("workspace is clean"));
    }
}
