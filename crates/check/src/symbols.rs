//! Phase 1 of the workspace analysis: every file parsed once into a
//! symbol index — `fn` items with their body spans and enclosing `impl`
//! context, `// linklens-deterministic` markers, and the per-file set of
//! bindings whose type is an unordered `HashMap`/`HashSet`.
//!
//! Everything here is an over-approximation built on the token stream
//! from [`crate::lexer`]; there is deliberately no `syn` and no real type
//! inference. The dataflow rules in [`crate::dataflow`] are written so
//! that over-approximation widens the *scanned* set (more functions
//! considered deterministic-surface, more bindings considered unordered)
//! but a diagnostic still requires a concrete hazard pattern at the site.

use crate::lexer::{self, Lexed, Token};
use crate::rules::{ident_at, past_matching_brace, punct_at};
use crate::workspace::FileInfo;

/// One `fn` item.
#[derive(Debug)]
pub(crate) struct FnSym {
    pub(crate) name: String,
    /// Self type of the enclosing `impl` block, if any (`impl Foo`,
    /// `impl Trait for Foo` → `Foo`).
    pub(crate) impl_ctx: Option<String>,
    /// Token range of the body: `(open_brace, past_close_brace)`.
    /// `None` for bodyless trait declarations.
    pub(crate) body: Option<(usize, usize)>,
    /// Preceded by a `// linklens-deterministic` marker comment.
    pub(crate) marked_deterministic: bool,
    /// Inside a `#[test]` / `#[cfg(test)]` item.
    pub(crate) in_test: bool,
}

/// One binding (or struct field) whose ascribed or constructed type is an
/// unordered `std` hash container.
#[derive(Debug)]
pub(crate) struct UnorderedBinding {
    pub(crate) name: String,
}

/// A file after phase-1 parsing.
#[derive(Debug)]
pub(crate) struct ParsedFile {
    pub(crate) info: FileInfo,
    pub(crate) lexed: Lexed,
    pub(crate) mask: Vec<bool>,
    pub(crate) fns: Vec<FnSym>,
    /// Names whose type somewhere in this file is `HashMap`/`HashSet`.
    /// File-scoped on purpose: a struct field declared unordered makes
    /// every same-named receiver in this file suspect.
    pub(crate) unordered: Vec<UnorderedBinding>,
}

impl ParsedFile {
    pub(crate) fn is_unordered(&self, name: &str) -> bool {
        self.unordered.iter().any(|u| u.name == name)
    }
}

const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet"];

/// How many lines above a `fn` a `// linklens-deterministic` marker may
/// sit (room for one attribute line between marker and item).
const MARKER_REACH: u32 = 2;

pub(crate) fn parse_file(info: &FileInfo, src: &str) -> ParsedFile {
    let lexed = lexer::lex(src);
    let mask = lexer::test_mask(&lexed.tokens);
    let fns = collect_fns(&lexed, &mask);
    let unordered = collect_unordered(&lexed.tokens);
    ParsedFile { info: info.clone(), lexed, mask, fns, unordered }
}

/// Marker lines: every comment that *is* a `linklens-deterministic`
/// directive (must start the comment, like `linklens-allow`).
fn marker_lines(lexed: &Lexed) -> Vec<u32> {
    lexed
        .comments
        .iter()
        .filter(|c| {
            c.text.trim_start_matches(['/', '!']).trim_start().starts_with("linklens-deterministic")
        })
        .map(|c| c.end_line)
        .collect()
}

fn collect_fns(lexed: &Lexed, mask: &[bool]) -> Vec<FnSym> {
    let tokens = &lexed.tokens;
    let markers = marker_lines(lexed);
    // Enclosing-impl context: token ranges of impl bodies with their self
    // type name. Nested impls don't occur in this workspace; a stack is
    // still kept so they'd resolve to the innermost.
    let impls = collect_impls(tokens);
    let impl_ctx_at = |i: usize| -> Option<String> {
        impls.iter().rfind(|(open, end, _)| *open <= i && i < *end).map(|(_, _, name)| name.clone())
    };

    let mut fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if ident_at(tokens, i) != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(tokens, i + 1) else {
            i += 1;
            continue;
        };
        let fn_line = tokens[i].line;
        // Find the body `{`, or `;` for a bodyless trait declaration.
        let mut j = i + 2;
        let mut body = None;
        while j < tokens.len() {
            match tokens[j].tok {
                lexer::Tok::Punct('{') => {
                    body = Some((j, past_matching_brace(tokens, j)));
                    break;
                }
                lexer::Tok::Punct(';') => break,
                _ => {}
            }
            j += 1;
        }
        let marked = markers.iter().any(|&m| m <= fn_line && fn_line - m <= MARKER_REACH);
        fns.push(FnSym {
            name: name.to_string(),
            impl_ctx: impl_ctx_at(i),
            body,
            marked_deterministic: marked,
            in_test: mask.get(i).copied().unwrap_or(false),
        });
        i = match body {
            Some((_, end)) => end,
            None => j + 1,
        };
    }
    fns
}

/// `(body_open, body_end, self_type)` for every `impl` block.
fn collect_impls(tokens: &[Token]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if ident_at(tokens, i) != Some("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Skip the generic parameter list, if any.
        if punct_at(tokens, j, '<') {
            let mut depth = 0i32;
            while j < tokens.len() {
                match tokens[j].tok {
                    lexer::Tok::Punct('<') => depth += 1,
                    lexer::Tok::Punct('>') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Scan to the body `{`; remember the first ident after `impl` and
        // the first ident after `for` — `impl Trait for Type` names the
        // self type after `for`, plain `impl Type` right away.
        let mut first_ident: Option<String> = None;
        let mut for_ident: Option<String> = None;
        let mut saw_for = false;
        let mut open = None;
        while j < tokens.len() {
            match &tokens[j].tok {
                lexer::Tok::Punct('{') => {
                    open = Some(j);
                    break;
                }
                lexer::Tok::Punct(';') => break,
                lexer::Tok::Ident(s) if s == "for" => saw_for = true,
                lexer::Tok::Ident(s) if s == "where" => {}
                lexer::Tok::Ident(s) => {
                    if saw_for {
                        if for_ident.is_none() {
                            for_ident = Some(s.clone());
                        }
                    } else if first_ident.is_none() {
                        first_ident = Some(s.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let end = past_matching_brace(tokens, open);
        if let Some(name) = for_ident.or(first_ident) {
            out.push((open, end, name));
        }
        i = open + 1; // descend into the body so nothing inside is skipped
    }
    out
}

/// Names bound (or ascribed, including struct fields and fn parameters)
/// to a `HashMap`/`HashSet` anywhere in the file.
fn collect_unordered(tokens: &[Token]) -> Vec<UnorderedBinding> {
    let mut out: Vec<UnorderedBinding> = Vec::new();
    let mut push = |name: &str| {
        if !out.iter().any(|u| u.name == name) {
            out.push(UnorderedBinding { name: name.to_string() });
        }
    };

    for i in 0..tokens.len() {
        // Pattern 1: type ascription `name : [&] [mut] [path ::] Hash{Map,Set}`.
        if punct_at(tokens, i, ':')
            && !punct_at(tokens, i + 1, ':')
            && i > 0
            && !punct_at(tokens, i - 1, ':')
        {
            let Some(name) = ident_at(tokens, i - 1) else { continue };
            let mut j = i + 1;
            // Skip reference/mut/path prefixes: `&`, `mut`, `std`, `::`,
            // `collections`.
            let mut hops = 0;
            while hops < 10 {
                if punct_at(tokens, j, '&')
                    || punct_at(tokens, j, ':')
                    || matches!(ident_at(tokens, j), Some("mut" | "std" | "collections"))
                {
                    j += 1;
                } else {
                    break;
                }
                hops += 1;
            }
            if ident_at(tokens, j).is_some_and(|t| UNORDERED_TYPES.contains(&t)) {
                push(name);
            }
        }
        // Pattern 2: `let [mut] name = … Hash{Map,Set} :: …` within one
        // statement (covers `HashMap::new()`, `HashSet::with_capacity(..)`,
        // and `HashMap::from(..)`).
        if ident_at(tokens, i) == Some("let") {
            let mut j = i + 1;
            if ident_at(tokens, j) == Some("mut") {
                j += 1;
            }
            let Some(name) = ident_at(tokens, j) else { continue };
            if !punct_at(tokens, j + 1, '=') || punct_at(tokens, j + 2, '=') {
                continue; // ascriptions handled above; `==` is not a binding
            }
            let mut k = j + 2;
            while k < tokens.len() && !punct_at(tokens, k, ';') {
                if ident_at(tokens, k).is_some_and(|t| UNORDERED_TYPES.contains(&t))
                    && punct_at(tokens, k + 1, ':')
                    && punct_at(tokens, k + 2, ':')
                {
                    push(name);
                    break;
                }
                k += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::FileKind;

    fn info() -> FileInfo {
        FileInfo {
            path: "crates/metrics/src/fixture.rs".into(),
            krate: "metrics".into(),
            kind: FileKind::Lib,
            is_crate_root: false,
            is_shim: false,
        }
    }

    #[test]
    fn fns_capture_name_body_and_impl_context() {
        let src = "impl Metric for Katz {\n  fn score_pairs(&self) -> Vec<f64> { vec![] }\n}\nfn helper() {}\ntrait T { fn decl(&self); }";
        let p = parse_file(&info(), src);
        let names: Vec<_> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["score_pairs", "helper", "decl"]);
        assert_eq!(p.fns[0].impl_ctx.as_deref(), Some("Katz"));
        assert!(p.fns[0].body.is_some());
        assert_eq!(p.fns[1].impl_ctx, None);
        assert!(p.fns[2].body.is_none());
    }

    #[test]
    fn plain_impl_names_self_type_directly() {
        let src = "impl SnapshotBuilder {\n  fn advance_to(&mut self, t: u32) {}\n}";
        let p = parse_file(&info(), src);
        assert_eq!(p.fns[0].impl_ctx.as_deref(), Some("SnapshotBuilder"));
    }

    #[test]
    fn generic_impls_resolve_past_the_parameter_list() {
        let src = "impl<T: Clone> Wrapper<T> {\n  fn get(&self) -> &T { &self.0 }\n}";
        let p = parse_file(&info(), src);
        assert_eq!(p.fns[0].impl_ctx.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn deterministic_marker_reaches_over_an_attribute() {
        let src = "// linklens-deterministic: feeds classifier training order\n#[inline]\nfn prepare_seeds() {}\n\nfn unmarked() {}";
        let p = parse_file(&info(), src);
        assert!(p.fns[0].marked_deterministic);
        assert!(!p.fns[1].marked_deterministic);
    }

    #[test]
    fn test_fns_are_flagged() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}";
        let p = parse_file(&info(), src);
        assert!(!p.fns[0].in_test);
        assert!(p.fns[1].in_test);
    }

    #[test]
    fn unordered_bindings_from_ascription_constructor_and_fields() {
        let src = "struct Cache { ppr_prev: HashMap<u32, Vec<f64>> }\nfn f(ids: &mut std::collections::HashMap<u64, u32>) {\n  let mut seen = HashSet::new();\n  let seen2 = std::collections::HashSet::with_capacity(4);\n  let ordered = BTreeMap::new();\n  let n = seen.len();\n}";
        let p = parse_file(&info(), src);
        assert!(p.is_unordered("ppr_prev"));
        assert!(p.is_unordered("ids"));
        assert!(p.is_unordered("seen"));
        assert!(p.is_unordered("seen2"));
        assert!(!p.is_unordered("ordered"));
        assert!(!p.is_unordered("n"));
    }
}
