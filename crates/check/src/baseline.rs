//! The ratchet: a committed `check-baseline.json` enumerating pre-existing
//! findings per `(rule, file)` bucket. A run with a baseline marks up to
//! the recorded count of matching findings as `baselined` (reported, but
//! not failing); anything beyond the count — or in a bucket the baseline
//! doesn't know — stays active and fails CI. Buckets can only shrink:
//! when a run finds fewer than the recorded count, the checker reports a
//! tighten note so the file gets regenerated (`--write-baseline`) with
//! the smaller numbers.
//!
//! Buckets are `(rule, file)` rather than `(rule, file, line)` on
//! purpose: unrelated edits move lines constantly, and a ratchet that
//! churns on every rebase trains people to regenerate it blindly —
//! exactly the reflex a ratchet exists to prevent.

use crate::report::RunSummary;
use std::collections::BTreeMap;

const FORMAT: f64 = 1.0;

/// Parsed baseline: `(rule, path)` → allowed count.
#[derive(Debug, Default, PartialEq)]
pub struct Baseline {
    pub buckets: BTreeMap<(String, String), usize>,
}

/// One key's serialized form: `rule|path`.
fn key_str(rule: &str, path: &str) -> String {
    format!("{rule}|{path}")
}

impl Baseline {
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let v: serde_json::Value =
            serde_json::from_str(src).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        match v.get("format") {
            Some(serde_json::Value::Number(n)) if *n == FORMAT => {}
            other => return Err(format!("unsupported baseline format: {other:?}")),
        }
        let Some(serde_json::Value::Object(entries)) = v.get("buckets") else {
            return Err("baseline has no `buckets` object".to_string());
        };
        let mut buckets = BTreeMap::new();
        for (key, val) in entries {
            let Some((rule, path)) = key.split_once('|') else {
                return Err(format!("malformed bucket key `{key}` (want `rule|path`)"));
            };
            let serde_json::Value::Number(n) = val else {
                return Err(format!("bucket `{key}` count is not a number"));
            };
            if *n < 0.0 || n.fract() != 0.0 {
                return Err(format!("bucket `{key}` count {n} is not a non-negative integer"));
            }
            buckets.insert((rule.to_string(), path.to_string()), *n as usize);
        }
        Ok(Baseline { buckets })
    }

    /// Serializes the baseline of `run`'s current findings: every
    /// unsuppressed finding bucketed by `(rule, path)`.
    pub fn render(run: &RunSummary) -> String {
        let mut buckets: BTreeMap<String, usize> = BTreeMap::new();
        for d in run.diagnostics.iter().filter(|d| !d.suppressed) {
            *buckets.entry(key_str(d.rule, &d.path)).or_default() += 1;
        }
        let entries: Vec<(String, serde_json::Value)> =
            buckets.into_iter().map(|(k, n)| (k, serde_json::Value::Number(n as f64))).collect();
        let doc = serde_json::json!({
            "tool": "linklens-check",
            "format": FORMAT,
            "buckets": serde_json::Value::Object(entries),
        });
        let mut s = serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".to_string());
        s.push('\n');
        s
    }
}

/// Applies `base` to `run`: within each `(rule, path)` bucket, the first
/// `count` unsuppressed findings (in the run's deterministic path/line
/// order) become `baselined`. Returns tighten notes — buckets where the
/// run now has fewer findings than recorded, i.e. the ratchet can and
/// should be tightened with `--write-baseline`.
pub fn apply(run: &mut RunSummary, base: &Baseline) -> Vec<String> {
    let mut remaining: BTreeMap<(String, String), usize> = base.buckets.clone();
    for d in run.diagnostics.iter_mut().filter(|d| !d.suppressed) {
        let key = (d.rule.to_string(), d.path.clone());
        if let Some(n) = remaining.get_mut(&key) {
            if *n > 0 {
                *n -= 1;
                d.baselined = true;
            }
        }
    }
    remaining
        .iter()
        .filter(|(_, n)| **n > 0)
        .map(|((rule, path), n)| {
            format!(
                "baseline bucket `{rule}|{path}` has {n} unused slot(s); tighten with --write-baseline"
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    fn run_with(findings: &[(&'static str, &str, u32)]) -> RunSummary {
        RunSummary {
            files_checked: 1,
            diagnostics: findings
                .iter()
                .map(|(rule, path, line)| Diagnostic::new(rule, path, *line, "m".into()))
                .collect(),
        }
    }

    #[test]
    fn round_trip_preserves_buckets() {
        let run = run_with(&[
            ("unwrap-in-lib", "crates/graph/src/io.rs", 3),
            ("unwrap-in-lib", "crates/graph/src/io.rs", 9),
            ("truncating-cast", "crates/core/src/x.rs", 1),
        ]);
        let text = Baseline::render(&run);
        let parsed = Baseline::parse(&text).expect("round trip");
        assert_eq!(
            parsed.buckets.get(&("unwrap-in-lib".into(), "crates/graph/src/io.rs".into())),
            Some(&2)
        );
        assert_eq!(
            parsed.buckets.get(&("truncating-cast".into(), "crates/core/src/x.rs".into())),
            Some(&1)
        );
    }

    #[test]
    fn apply_absorbs_up_to_count_and_rejects_growth() {
        let base = Baseline::parse(
            "{\"tool\":\"linklens-check\",\"format\":1,\"buckets\":{\"unwrap-in-lib|crates/graph/src/io.rs\":1}}",
        )
        .expect("parse");
        // Two findings in a bucket of one: growth stays active.
        let mut run = run_with(&[
            ("unwrap-in-lib", "crates/graph/src/io.rs", 3),
            ("unwrap-in-lib", "crates/graph/src/io.rs", 9),
        ]);
        let notes = apply(&mut run, &base);
        assert!(notes.is_empty());
        assert_eq!(run.baselined().count(), 1);
        assert_eq!(run.active().count(), 1);
        assert!(run.has_violations(), "growth beyond the baseline fails");
    }

    #[test]
    fn apply_reports_shrinkage_for_tightening() {
        let base = Baseline::parse(
            "{\"tool\":\"linklens-check\",\"format\":1,\"buckets\":{\"unwrap-in-lib|crates/graph/src/io.rs\":3}}",
        )
        .expect("parse");
        let mut run = run_with(&[("unwrap-in-lib", "crates/graph/src/io.rs", 3)]);
        let notes = apply(&mut run, &base);
        assert_eq!(notes.len(), 1);
        assert!(notes[0].contains("2 unused slot(s)"), "{notes:?}");
        assert!(!run.has_violations());
    }

    #[test]
    fn unknown_bucket_findings_stay_active() {
        let base = Baseline::default();
        let mut run = run_with(&[("print-in-lib", "crates/ml/src/t.rs", 2)]);
        apply(&mut run, &base);
        assert!(run.has_violations());
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"format\":2,\"buckets\":{}}").is_err());
        assert!(Baseline::parse("{\"format\":1,\"buckets\":{\"no-pipe\":1}}").is_err());
        assert!(Baseline::parse("{\"format\":1,\"buckets\":{\"a|b\":-1}}").is_err());
    }
}
