//! Phase 2a: the over-approximate call graph and the deterministic
//! surface.
//!
//! The call graph is *name-based*: an identifier followed by `(` inside a
//! function body is an edge to every workspace function of that name, and
//! a bare identifier in argument position that matches a workspace
//! function name is an edge too (callback passing). No receiver types, no
//! path resolution — deliberately an over-approximation, so reachability
//! can only err toward scanning *more* code.
//!
//! ## Deterministic surface
//!
//! The roots are the places where the engine's bit-identity contract is
//! stated (see DESIGN.md §15):
//!
//! * every `fn score_*` / `fn predict*` (Metric implementations and the
//!   exec/framework entry points),
//! * every function in the fused/solver/factor kernel files,
//! * every method of `SnapshotBuilder`,
//! * anything marked `// linklens-deterministic`.
//!
//! Everything name-reachable from a root is "on the deterministic
//! surface" and gets the [`crate::dataflow`] rules.

use crate::rules::{ident_at, punct_at};
use crate::symbols::ParsedFile;
use crate::workspace::{FileInfo, FileKind};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose library code is subject to the phase-2 dataflow rules.
/// Bench and bin targets are excluded on purpose: timing reads and
/// console output are legitimate there. `serve` is in scope both for the
/// shared dataflow rules and for `blocking-in-query-path`, which guards
/// its marked query handlers.
const SCOPE_CRATES: &[&str] = &["graph", "metrics", "linalg", "core", "ml", "trace", "serve"];

/// Files whose every function is a deterministic root: the batched
/// kernels whose bit-identity the equivalence suites pin.
const KERNEL_FILES: &[&str] =
    &["crates/metrics/src/fused.rs", "crates/metrics/src/solver.rs", "crates/linalg/src/factor.rs"];

/// Impl blocks whose every method is a deterministic root.
const ROOT_IMPLS: &[&str] = &["SnapshotBuilder"];

pub(crate) fn in_scope(info: &FileInfo) -> bool {
    !info.is_shim && info.kind == FileKind::Lib && SCOPE_CRATES.contains(&info.krate.as_str())
}

/// Reserved words that look like call syntax (`if (`, `for (` never
/// actually occur, but `matches ! (`, `Some (` do) — anything here is
/// never a call edge. Capitalized tuple-struct/enum constructors are
/// excluded by the known-name check instead.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "mut", "in", "as",
    "move", "ref", "break", "continue", "where", "impl", "trait", "struct", "enum", "type", "pub",
    "use", "mod", "const", "static", "unsafe", "dyn", "self", "Self", "super", "crate",
];

/// The deterministic surface: function names reachable from the roots,
/// each mapped to the root that first reached it (for diagnostics).
#[derive(Debug)]
pub(crate) struct Surface {
    reachable: BTreeMap<String, String>,
}

impl Surface {
    /// The root through which `fn_name` became deterministic-surface,
    /// or `None` if it is not on the surface.
    pub(crate) fn origin(&self, fn_name: &str) -> Option<&str> {
        self.reachable.get(fn_name).map(String::as_str)
    }
}

/// Whether `f` is a deterministic root, and why.
fn root_reason(file: &ParsedFile, f: &crate::symbols::FnSym) -> Option<String> {
    if f.in_test {
        return None;
    }
    if f.name.starts_with("score_") || f.name.starts_with("predict") {
        return Some(format!("fn {}", f.name));
    }
    if KERNEL_FILES.contains(&file.info.path.as_str()) {
        return Some(format!("kernel file {}", file.info.path));
    }
    if let Some(ctx) = &f.impl_ctx {
        if ROOT_IMPLS.contains(&ctx.as_str()) {
            return Some(format!("impl {}", ctx));
        }
    }
    if f.marked_deterministic {
        return Some(format!("linklens-deterministic marker on {}", f.name));
    }
    None
}

/// Call edges out of one function body: every known workspace function
/// name that appears in call position (`name (`) or argument position
/// (`name ,` / `name )`) inside the body. `known` filters bare idents so
/// locals and field names don't become edges.
fn callees(file: &ParsedFile, body: (usize, usize), known: &BTreeSet<&str>) -> BTreeSet<String> {
    let tokens = &file.lexed.tokens;
    let (open, end) = body;
    let mut out = BTreeSet::new();
    for i in open..end.min(tokens.len()) {
        let Some(name) = ident_at(tokens, i) else { continue };
        if KEYWORDS.contains(&name) || !known.contains(name) {
            continue;
        }
        let call_pos = punct_at(tokens, i + 1, '(');
        // `name !` is a macro, not a function call.
        let macro_pos = punct_at(tokens, i + 1, '!');
        // Callback heuristic: a known fn name handed to something else.
        let arg_pos = punct_at(tokens, i + 1, ',') || punct_at(tokens, i + 1, ')');
        if (call_pos || arg_pos) && !macro_pos {
            out.insert(name.to_string());
        }
    }
    out
}

/// Builds the deterministic surface over every in-scope parsed file.
pub(crate) fn surface(files: &[ParsedFile]) -> Surface {
    let in_scope_files: Vec<&ParsedFile> = files.iter().filter(|p| in_scope(&p.info)).collect();

    // All known function names (for bare-ident filtering), and the call
    // edges per function name: name -> union of callees over every fn of
    // that name.
    let known: BTreeSet<&str> = in_scope_files
        .iter()
        .flat_map(|p| p.fns.iter())
        .filter(|f| !f.in_test)
        .map(|f| f.name.as_str())
        .collect();
    let mut edges: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    let mut roots: BTreeMap<&str, String> = BTreeMap::new();
    for p in &in_scope_files {
        for f in &p.fns {
            if f.in_test {
                continue;
            }
            if let Some(reason) = root_reason(p, f) {
                roots.entry(f.name.as_str()).or_insert(reason);
            }
            if let Some(body) = f.body {
                edges.entry(f.name.as_str()).or_default().extend(callees(p, body, &known));
            }
        }
    }

    // BFS from the roots over name-level edges.
    let mut reachable: BTreeMap<String, String> = BTreeMap::new();
    let mut queue: Vec<String> = Vec::new();
    for (name, reason) in &roots {
        reachable.insert(name.to_string(), reason.clone());
        queue.push(name.to_string());
    }
    while let Some(name) = queue.pop() {
        let origin = reachable[&name].clone();
        if let Some(outs) = edges.get(name.as_str()) {
            for callee in outs {
                if !reachable.contains_key(callee) {
                    reachable.insert(callee.clone(), origin.clone());
                    queue.push(callee.clone());
                }
            }
        }
    }
    Surface { reachable }
}

/// True when the token at `i` is inside a `#[test]`-masked region.
pub(crate) fn masked(file: &ParsedFile, i: usize) -> bool {
    file.mask.get(i).copied().unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::parse_file;
    use crate::workspace::FileKind;

    fn info(path: &str, krate: &str) -> FileInfo {
        FileInfo {
            path: path.into(),
            krate: krate.into(),
            kind: FileKind::Lib,
            is_crate_root: false,
            is_shim: false,
        }
    }

    #[test]
    fn reachability_follows_call_and_callback_edges() {
        let a = parse_file(
            &info("crates/metrics/src/m.rs", "metrics"),
            "fn score_pairs(&self) -> Vec<f64> { helper(1); apply(reducer, 2); vec![] }\nfn helper(x: u32) {}\nfn reducer(x: u32) {}\nfn apply(f: fn(u32), x: u32) {}\nfn unrelated() {}",
        );
        let s = surface(&[a]);
        assert!(s.origin("score_pairs").is_some());
        assert!(s.origin("helper").is_some());
        assert!(s.origin("reducer").is_some(), "argument-position callback is an edge");
        assert!(s.origin("unrelated").is_none());
    }

    #[test]
    fn roots_cover_kernels_builder_methods_and_markers() {
        let kernel = parse_file(
            &info("crates/metrics/src/fused.rs", "metrics"),
            "fn enumerate_and_score(x: u32) {}",
        );
        let builder = parse_file(
            &info("crates/graph/src/builder.rs", "graph"),
            "impl SnapshotBuilder {\n  fn advance_to(&mut self, t: u32) {}\n}",
        );
        let marked = parse_file(
            &info("crates/core/src/classify.rs", "core"),
            "// linklens-deterministic: feeds training order\nfn prepare_seeds() {}",
        );
        let s = surface(&[kernel, builder, marked]);
        assert!(s.origin("enumerate_and_score").unwrap().contains("kernel file"));
        assert!(s.origin("advance_to").unwrap().contains("impl SnapshotBuilder"));
        assert!(s.origin("prepare_seeds").unwrap().contains("marker"));
    }

    #[test]
    fn out_of_scope_files_and_test_fns_contribute_nothing() {
        let bench = parse_file(
            &FileInfo {
                path: "crates/bench/src/lib.rs".into(),
                krate: "bench".into(),
                kind: FileKind::Lib,
                is_crate_root: true,
                is_shim: false,
            },
            "fn score_timer() { Instant::now(); }",
        );
        let tests_only = parse_file(
            &info("crates/core/src/t.rs", "core"),
            "#[cfg(test)]\nmod tests {\n  fn score_fake() {}\n}",
        );
        let s = surface(&[bench, tests_only]);
        assert!(s.origin("score_timer").is_none());
        assert!(s.origin("score_fake").is_none());
    }
}
