//! Random forests: bagged CART trees with feature subsampling.

use crate::data::Dataset;
use crate::tree::{DecisionTree, TreeConfig};
use crate::Classifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-forest configuration + trained state.
///
/// Each tree is grown on a bootstrap resample of the training data with
/// `√d` random features considered per split (the scikit-learn default the
/// paper inherits). `decision` is the mean positive-class probability over
/// trees, shifted so 0 is the voting threshold.
#[derive(Clone, Debug)]
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Depth limit per tree.
    pub max_depth: usize,
    /// RNG seed (controls bootstraps and per-tree feature subsampling).
    pub seed: u64,
    trees: Vec<DecisionTree>,
}

impl Default for RandomForest {
    fn default() -> Self {
        RandomForest { n_trees: 40, max_depth: 10, seed: 42, trees: Vec::new() }
    }
}

impl RandomForest {
    /// Creates a forest with default hyper-parameters and the given seed.
    pub fn seeded(seed: u64) -> Self {
        RandomForest { seed, ..Default::default() }
    }

    /// Number of fitted trees (0 before `fit`).
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Mean normalized Gini feature importance over trees (all zeros
    /// before `fit`).
    pub fn feature_importances(&self) -> Vec<f64> {
        if self.trees.is_empty() {
            return Vec::new();
        }
        let d = self.trees[0].feature_importances().len();
        let mut acc = vec![0.0; d];
        for t in &self.trees {
            for (a, x) in acc.iter_mut().zip(t.feature_importances()) {
                *a += x / self.trees.len() as f64;
            }
        }
        acc
    }

    /// Mean positive-class probability over trees.
    pub fn positive_probability(&self, row: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "predict before fit");
        self.trees.iter().map(|t| t.class_probability(row, 1)).sum::<f64>()
            / self.trees.len() as f64
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let k = (data.n_features() as f64).sqrt().ceil() as usize;
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.trees = (0..self.n_trees)
            .map(|t| {
                // Bootstrap resample (with replacement).
                let idx: Vec<usize> =
                    (0..data.len()).map(|_| rng.random_range(0..data.len())).collect();
                let sample = data.select(&idx);
                let cfg = TreeConfig {
                    max_depth: self.max_depth,
                    feature_subsample: Some(k.max(1)),
                    seed: self.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ..Default::default()
                };
                let mut tree = DecisionTree::new(cfg);
                tree.fit_multiclass(&sample);
                tree
            })
            .collect();
    }

    fn decision(&self, row: &[f64]) -> f64 {
        self.positive_probability(row) - 0.5
    }

    fn name(&self) -> &'static str {
        "RF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_bands() -> Dataset {
        let mut d = Dataset::new(3);
        let mut s = 3u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..300 {
            let y = i % 2 == 0;
            let signal = if y { 1.0 } else { -1.0 };
            d.push(&[signal + next() * 0.8, next(), next()], u32::from(y));
        }
        d
    }

    #[test]
    fn learns_noisy_data() {
        let d = noisy_bands();
        let mut rf = RandomForest::seeded(1);
        rf.fit(&d);
        let correct = (0..d.len()).filter(|&i| rf.predict(d.row(i)) == d.label_bool(i)).count();
        assert!(correct as f64 / d.len() as f64 > 0.9);
        assert_eq!(rf.tree_count(), 40);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let d = noisy_bands();
        let mut rf = RandomForest::seeded(2);
        rf.fit(&d);
        for x in [-2.0, 0.0, 2.0] {
            let p = rf.positive_probability(&[x, 0.0, 0.0]);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn probability_is_monotone_in_signal() {
        let d = noisy_bands();
        let mut rf = RandomForest::seeded(3);
        rf.fit(&d);
        let lo = rf.positive_probability(&[-2.0, 0.0, 0.0]);
        let hi = rf.positive_probability(&[2.0, 0.0, 0.0]);
        assert!(hi > lo + 0.5, "hi={hi} lo={lo}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = noisy_bands();
        let mut a = RandomForest::seeded(4);
        let mut b = RandomForest::seeded(4);
        a.fit(&d);
        b.fit(&d);
        let row = [0.3, 0.1, -0.2];
        assert_eq!(a.decision(&row), b.decision(&row));
    }

    #[test]
    fn forest_importances_find_the_signal() {
        let d = noisy_bands(); // feature 0 carries the signal
        let mut rf = RandomForest::seeded(8);
        rf.fit(&d);
        let imp = rf.feature_importances();
        assert_eq!(imp.len(), 3);
        assert!(imp[0] > imp[1] && imp[0] > imp[2], "signal feature should lead: {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ensemble_smooths_single_tree() {
        // Heavily overlapping classes: forest probability on a point in the
        // overlap should be strictly between 0 and 1 (bootstrap diversity),
        // unlike a deep single tree's hard 0/1.
        let mut d = Dataset::new(1);
        let mut s = 17u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..300 {
            let y = i % 2 == 0;
            let c = if y { 0.3 } else { -0.3 };
            d.push(&[c + next() * 3.0], u32::from(y));
        }
        let mut rf = RandomForest::seeded(5);
        rf.fit(&d);
        let p = rf.positive_probability(&[0.0]);
        assert!(p > 0.02 && p < 0.98, "ambiguous point got hard vote {p}");
    }
}
