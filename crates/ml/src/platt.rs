//! Platt scaling: calibrated probabilities from raw decision scores.
//!
//! The paper's conclusions (§8) call out "binary classification results
//! that lack granularity" as a concrete problem with several predictors.
//! Platt scaling is the standard fix: fit `P(y=1 | s) = σ(A·s + B)` on a
//! classifier's decision scores by regularized maximum likelihood (Platt
//! 1999, with Lin–Lin–Weng's target smoothing), turning *any* ranking
//! score — an SVM margin, a forest vote share, even a similarity metric —
//! into a usable probability.

// (serde intentionally not a dependency of osn-ml; keep the struct plain)

/// A fitted Platt calibrator: `P(y=1|s) = σ(a·s + b)`.
#[derive(Clone, Copy, Debug)]
pub struct PlattScaler {
    /// Slope on the decision score.
    pub a: f64,
    /// Intercept.
    pub b: f64,
}

impl PlattScaler {
    /// Fits the calibrator on `(score, label)` pairs by Newton-damped
    /// gradient descent on the regularized log-loss, using the smoothed
    /// targets `t⁺ = (N⁺+1)/(N⁺+2)`, `t⁻ = 1/(N⁻+2)` that keep the MLE
    /// finite on separable data.
    ///
    /// # Panics
    /// Panics if fewer than 2 samples or only one class is present.
    pub fn fit(scores: &[f64], labels: &[bool]) -> PlattScaler {
        assert_eq!(scores.len(), labels.len());
        assert!(scores.len() >= 2, "need at least two samples");
        let n_pos = labels.iter().filter(|&&l| l).count();
        let n_neg = labels.len() - n_pos;
        assert!(n_pos > 0 && n_neg > 0, "need both classes to calibrate");

        let t_pos = (n_pos as f64 + 1.0) / (n_pos as f64 + 2.0);
        let t_neg = 1.0 / (n_neg as f64 + 2.0);
        let targets: Vec<f64> = labels.iter().map(|&l| if l { t_pos } else { t_neg }).collect();

        // Gradient descent with a per-step backtracking line search —
        // simple and robust for a 2-parameter convex problem.
        let mut a = 0.0f64;
        let mut b = -((n_neg as f64 + 1.0) / (n_pos as f64 + 1.0)).ln();
        let nll = |a: f64, b: f64| -> f64 {
            scores
                .iter()
                .zip(&targets)
                .map(|(&s, &t)| {
                    let z = a * s + b;
                    // log(1+e^z) - t·z, stably.
                    let log1p = if z > 0.0 { z + (-z).exp().ln_1p() } else { z.exp().ln_1p() };
                    log1p - t * z
                })
                .sum()
        };
        let mut f = nll(a, b);
        for _ in 0..200 {
            // Gradient.
            let mut ga = 0.0;
            let mut gb = 0.0;
            for (&s, &t) in scores.iter().zip(&targets) {
                let z = a * s + b;
                let p = if z >= 0.0 {
                    1.0 / (1.0 + (-z).exp())
                } else {
                    let e = z.exp();
                    e / (1.0 + e)
                };
                ga += (p - t) * s;
                gb += p - t;
            }
            let norm = (ga * ga + gb * gb).sqrt();
            if norm < 1e-10 {
                break;
            }
            // Backtracking step.
            let mut step = 1.0 / (1.0 + norm);
            let mut improved = false;
            for _ in 0..40 {
                let (na, nb) = (a - step * ga, b - step * gb);
                let nf = nll(na, nb);
                if nf < f {
                    a = na;
                    b = nb;
                    f = nf;
                    improved = true;
                    break;
                }
                step *= 0.5;
            }
            if !improved {
                break;
            }
        }
        PlattScaler { a, b }
    }

    /// Calibrated probability for a decision score.
    pub fn probability(&self, score: f64) -> f64 {
        let z = self.a * score + self.b;
        if z >= 0.0 {
            1.0 / (1.0 + (-z).exp())
        } else {
            let e = z.exp();
            e / (1.0 + e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (Vec<f64>, Vec<bool>) {
        let scores: Vec<f64> = (0..40).map(|i| i as f64 / 10.0 - 2.0).collect();
        let labels: Vec<bool> = scores.iter().map(|&s| s > 0.0).collect();
        (scores, labels)
    }

    #[test]
    fn calibrated_probabilities_are_monotone() {
        let (s, l) = separable();
        let p = PlattScaler::fit(&s, &l);
        let probs: Vec<f64> = s.iter().map(|&x| p.probability(x)).collect();
        for w in probs.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "calibration must preserve ranking");
        }
        assert!(probs[0] < 0.3, "low scores → low probability, got {}", probs[0]);
        assert!(probs[39] > 0.7, "high scores → high probability");
    }

    #[test]
    fn probabilities_bounded() {
        let (s, l) = separable();
        let p = PlattScaler::fit(&s, &l);
        for x in [-1e6, -1.0, 0.0, 1.0, 1e6] {
            let pr = p.probability(x);
            assert!((0.0..=1.0).contains(&pr));
        }
    }

    #[test]
    fn calibration_reflects_base_rate() {
        // Uninformative scores: calibrated probability ≈ base rate.
        let scores = vec![0.0; 100];
        let labels: Vec<bool> = (0..100).map(|i| i < 10).collect();
        let p = PlattScaler::fit(&scores, &labels);
        let prob = p.probability(0.0);
        assert!((prob - 0.1).abs() < 0.05, "base rate 10% should calibrate near 0.1, got {prob}");
    }

    #[test]
    fn noisy_overlap_gives_soft_probabilities() {
        // Overlapping classes: mid scores must not saturate.
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50 {
            scores.push(i as f64 * 0.02);
            labels.push(i % 3 != 0); // 2/3 positive across the range
        }
        for i in 0..50 {
            scores.push(-(i as f64) * 0.02);
            labels.push(i % 3 == 0); // 1/3 positive
        }
        let p = PlattScaler::fit(&scores, &labels);
        let mid = p.probability(0.0);
        assert!(mid > 0.2 && mid < 0.8, "overlap should stay soft, got {mid}");
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        PlattScaler::fit(&[1.0, 2.0], &[true, true]);
    }

    #[test]
    fn works_on_svm_scores_end_to_end() {
        use crate::data::Dataset;
        use crate::svm::LinearSvm;
        use crate::Classifier;
        let mut d = Dataset::new(1);
        let mut s = 5u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..200 {
            let y = i % 2 == 0;
            d.push(&[if y { 1.0 } else { -1.0 } + next()], u32::from(y));
        }
        let mut svm = LinearSvm::seeded(1);
        svm.fit(&d);
        let scores: Vec<f64> = (0..d.len()).map(|i| svm.decision(d.row(i))).collect();
        let labels: Vec<bool> = (0..d.len()).map(|i| d.label_bool(i)).collect();
        let platt = PlattScaler::fit(&scores, &labels);
        // Calibrated probabilities should separate the classes.
        let mean_pos: f64 = scores
            .iter()
            .zip(&labels)
            .filter(|&(_, &l)| l)
            .map(|(&s, _)| platt.probability(s))
            .sum::<f64>()
            / 100.0;
        let mean_neg: f64 = scores
            .iter()
            .zip(&labels)
            .filter(|&(_, &l)| !l)
            .map(|(&s, _)| platt.probability(s))
            .sum::<f64>()
            / 100.0;
        assert!(mean_pos > 0.8 && mean_neg < 0.2, "pos {mean_pos:.2} neg {mean_neg:.2}");
    }
}
