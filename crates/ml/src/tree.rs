//! CART decision trees (Gini impurity), multi-class, with rule extraction.
//!
//! Used three ways in LinkLens: as the base learner of
//! [`crate::forest::RandomForest`], as the §4.3 multi-class
//! network→best-metric selector (Figure 6), and as the per-algorithm binary
//! "when is this metric good" classifier whose extracted rules the paper
//! reports (e.g. *Rescal: degree std-dev > 60.3*).

use crate::data::Dataset;
use crate::Classifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tree growth limits.
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// When `Some(k)`, each split considers only `k` random features
    /// (random-forest mode); `None` considers all features.
    pub feature_subsample: Option<usize>,
    /// Seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_leaf: 1,
            min_samples_split: 2,
            feature_subsample: None,
            seed: 42,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf { counts: Vec<usize> },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// A fitted CART decision tree.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    /// Growth limits used at fit time.
    pub config: TreeConfig,
    nodes: Vec<Node>,
    n_classes: usize,
    /// Accumulated sample-weighted Gini decrease per feature (Breiman's
    /// "mean decrease in impurity"), unnormalized.
    importance: Vec<f64>,
}

impl Default for DecisionTree {
    fn default() -> Self {
        Self::new(TreeConfig::default())
    }
}

impl DecisionTree {
    /// Creates an unfitted tree.
    pub fn new(config: TreeConfig) -> Self {
        DecisionTree { config, nodes: Vec::new(), n_classes: 0, importance: Vec::new() }
    }

    /// Per-feature Gini importances, normalized to sum 1 (all zeros for a
    /// stump). The forest averages these across trees; comparable in
    /// spirit to the SVM |w| analysis of the paper's Figure 12.
    pub fn feature_importances(&self) -> Vec<f64> {
        let total: f64 = self.importance.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.importance.len()];
        }
        self.importance.iter().map(|x| x / total).collect()
    }

    /// Fits the tree on a dataset with arbitrarily many classes.
    pub fn fit_multiclass(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        self.n_classes = data.n_classes().max(2);
        self.importance = vec![0.0; data.n_features()];
        self.nodes.clear();
        let indices: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.grow(data, indices, 0, &mut rng);
    }

    fn class_counts(&self, data: &Dataset, indices: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &i in indices {
            counts[data.label(i) as usize] += 1;
        }
        counts
    }

    fn grow(
        &mut self,
        data: &Dataset,
        indices: Vec<usize>,
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let counts = self.class_counts(data, &indices);
        let node_id = self.nodes.len();
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || depth >= self.config.max_depth || indices.len() < self.config.min_samples_split {
            self.nodes.push(Node::Leaf { counts });
            return node_id;
        }
        let Some((feature, threshold)) = self.best_split(data, &indices, rng) else {
            self.nodes.push(Node::Leaf { counts });
            return node_id;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.into_iter().partition(|&i| data.row(i)[feature] <= threshold);
        if left_idx.len() < self.config.min_samples_leaf
            || right_idx.len() < self.config.min_samples_leaf
        {
            self.nodes.push(Node::Leaf { counts });
            return node_id;
        }
        // Record the impurity decrease this split achieves, weighted by
        // the node's sample count (Gini importance).
        {
            let total = (left_idx.len() + right_idx.len()) as f64;
            let parent_gini = gini(&counts, left_idx.len() + right_idx.len());
            let lc = self.class_counts(data, &left_idx);
            let rc = self.class_counts(data, &right_idx);
            let child = (left_idx.len() as f64 / total) * gini(&lc, left_idx.len())
                + (right_idx.len() as f64 / total) * gini(&rc, right_idx.len());
            self.importance[feature] += total * (parent_gini - child).max(0.0);
        }
        // Reserve the split slot, then grow children.
        self.nodes.push(Node::Leaf { counts: Vec::new() });
        let left = self.grow(data, left_idx, depth + 1, rng);
        let right = self.grow(data, right_idx, depth + 1, rng);
        self.nodes[node_id] = Node::Split { feature, threshold, left, right };
        node_id
    }

    /// Finds the (feature, threshold) minimizing weighted Gini impurity.
    fn best_split(
        &self,
        data: &Dataset,
        indices: &[usize],
        rng: &mut StdRng,
    ) -> Option<(usize, f64)> {
        let d = data.n_features();
        let features: Vec<usize> = match self.config.feature_subsample {
            Some(k) if k < d => {
                let mut all: Vec<usize> = (0..d).collect();
                for i in 0..k {
                    let j = rng.random_range(i..d);
                    all.swap(i, j);
                }
                all.truncate(k);
                all
            }
            _ => (0..d).collect(),
        };

        let total = indices.len() as f64;
        let parent_counts = self.class_counts(data, indices);
        let parent_gini = gini(&parent_counts, indices.len());
        let mut best: Option<(f64, usize, f64)> = None; // (impurity drop, feature, thr)

        let mut sorted = indices.to_vec();
        for &f in &features {
            sorted.sort_by(|&a, &b| data.row(a)[f].total_cmp(&data.row(b)[f]));
            let mut left_counts = vec![0usize; self.n_classes];
            let mut right_counts = parent_counts.clone();
            for k in 0..sorted.len() - 1 {
                let i = sorted[k];
                let c = data.label(i) as usize;
                left_counts[c] += 1;
                right_counts[c] -= 1;
                let x_here = data.row(i)[f];
                let x_next = data.row(sorted[k + 1])[f];
                if x_here == x_next {
                    continue; // can't split between equal values
                }
                let nl = (k + 1) as f64;
                let nr = total - nl;
                let g = (nl / total) * gini(&left_counts, k + 1)
                    + (nr / total) * gini(&right_counts, sorted.len() - k - 1);
                // Zero-gain splits are accepted (as in scikit-learn's
                // CART): XOR-like targets need them to make progress, and
                // recursion still terminates because both children are
                // strictly smaller.
                let drop = parent_gini - g;
                if drop >= -1e-12 && best.is_none_or(|(bd, _, _)| drop > bd) {
                    best = Some((drop, f, 0.5 * (x_here + x_next)));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }

    /// Class counts of the leaf a row descends to. Returning the counts
    /// slice directly (rather than the node) keeps the callers total:
    /// the descent loop itself proves the result is a leaf.
    fn leaf_counts(&self, row: &[f64]) -> &[usize] {
        let mut id = 0usize;
        loop {
            match &self.nodes[id] {
                Node::Leaf { counts } => return counts,
                Node::Split { feature, threshold, left, right } => {
                    id = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Predicted class for a row (majority class of the reached leaf).
    pub fn predict_class(&self, row: &[f64]) -> u32 {
        assert!(!self.nodes.is_empty(), "predict before fit");
        self.leaf_counts(row)
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(c, _)| c as u32)
            .unwrap_or(0)
    }

    /// `P(class | x)` estimated from leaf class frequencies.
    pub fn class_probability(&self, row: &[f64], class: u32) -> f64 {
        let counts = self.leaf_counts(row);
        let total: usize = counts.iter().sum();
        if total == 0 {
            0.0
        } else {
            counts.get(class as usize).copied().unwrap_or(0) as f64 / total as f64
        }
    }

    /// Depth of the fitted tree (root-only tree has depth 0).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    /// Extracts one human-readable rule per leaf:
    /// `"degree_std > 60.30 → class Rescal (12/13)"`.
    /// `feature_names` and `class_names` label the columns and classes.
    pub fn rules(&self, feature_names: &[&str], class_names: &[&str]) -> Vec<String> {
        let mut out = Vec::new();
        let mut path: Vec<String> = Vec::new();
        self.rules_rec(0, &mut path, feature_names, class_names, &mut out);
        out
    }

    fn rules_rec(
        &self,
        id: usize,
        path: &mut Vec<String>,
        fnames: &[&str],
        cnames: &[&str],
        out: &mut Vec<String>,
    ) {
        match &self.nodes[id] {
            Node::Leaf { counts } => {
                let total: usize = counts.iter().sum();
                let (class, &majority) =
                    counts.iter().enumerate().max_by_key(|&(_, &c)| c).expect("non-empty counts");
                let cond =
                    if path.is_empty() { "(always)".to_string() } else { path.join(" and ") };
                out.push(format!(
                    "{cond} → class {} ({majority}/{total})",
                    cnames.get(class).copied().unwrap_or("?")
                ));
            }
            Node::Split { feature, threshold, left, right } => {
                let name = fnames.get(*feature).copied().unwrap_or("?");
                path.push(format!("{name} <= {threshold:.3}"));
                self.rules_rec(*left, path, fnames, cnames, out);
                path.pop();
                path.push(format!("{name} > {threshold:.3}"));
                self.rules_rec(*right, path, fnames, cnames, out);
                path.pop();
            }
        }
    }
}

/// Gini impurity of a class-count vector.
fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset) {
        self.fit_multiclass(data);
    }

    fn decision(&self, row: &[f64]) -> f64 {
        self.class_probability(row, 1) - 0.5
    }

    fn name(&self) -> &'static str {
        "DT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> Dataset {
        // XOR needs depth ≥ 2 — a classic linear-model failure case.
        let mut d = Dataset::new(2);
        for _ in 0..10 {
            d.push(&[0.0, 0.0], 0);
            d.push(&[1.0, 1.0], 0);
            d.push(&[0.0, 1.0], 1);
            d.push(&[1.0, 0.0], 1);
        }
        d
    }

    #[test]
    fn learns_xor() {
        let mut t = DecisionTree::default();
        t.fit_multiclass(&xor_data());
        assert_eq!(t.predict_class(&[0.0, 0.0]), 0);
        assert_eq!(t.predict_class(&[1.0, 1.0]), 0);
        assert_eq!(t.predict_class(&[0.0, 1.0]), 1);
        assert_eq!(t.predict_class(&[1.0, 0.0]), 1);
    }

    #[test]
    fn pure_leaves_give_extreme_probabilities() {
        let mut t = DecisionTree::default();
        t.fit_multiclass(&xor_data());
        assert_eq!(t.class_probability(&[0.0, 1.0], 1), 1.0);
        assert_eq!(t.class_probability(&[0.0, 0.0], 1), 0.0);
    }

    #[test]
    fn max_depth_zero_is_a_stump() {
        let cfg = TreeConfig { max_depth: 0, ..Default::default() };
        let mut t = DecisionTree::new(cfg);
        t.fit_multiclass(&xor_data());
        assert_eq!(t.depth(), 0);
        // Majority prediction everywhere (tie → lowest class wins).
        assert_eq!(t.predict_class(&[0.0, 1.0]), t.predict_class(&[0.0, 0.0]));
    }

    #[test]
    fn multiclass_three_bands() {
        let mut d = Dataset::new(1);
        for i in 0..30 {
            let x = i as f64;
            let c = if x < 10.0 {
                0
            } else if x < 20.0 {
                1
            } else {
                2
            };
            d.push(&[x], c);
        }
        let mut t = DecisionTree::default();
        t.fit_multiclass(&d);
        assert_eq!(t.predict_class(&[5.0]), 0);
        assert_eq!(t.predict_class(&[15.0]), 1);
        assert_eq!(t.predict_class(&[25.0]), 2);
    }

    #[test]
    fn min_samples_leaf_limits_splits() {
        let cfg = TreeConfig { min_samples_leaf: 25, ..Default::default() };
        let mut t = DecisionTree::new(cfg);
        t.fit_multiclass(&xor_data()); // 40 samples; any split leaves < 25 on one side... 20/20 split allowed? no: 20 < 25.
        assert_eq!(t.depth(), 0, "leaf minimum should forbid splitting 40 into 20+20");
    }

    #[test]
    fn rules_name_features_and_classes() {
        let mut d = Dataset::new(2);
        for i in 0..20 {
            d.push(&[i as f64, 0.0], u32::from(i >= 10));
        }
        let mut t = DecisionTree::default();
        t.fit_multiclass(&d);
        let rules = t.rules(&["degree_std", "clustering"], &["bad", "good"]);
        assert_eq!(rules.len(), 2);
        assert!(rules[0].contains("degree_std <= 9.5"), "got {rules:?}");
        assert!(rules[1].contains("class good"));
    }

    #[test]
    fn classifier_interface_decision_sign() {
        let mut d = Dataset::new(1);
        for i in 0..20 {
            d.push(&[i as f64], u32::from(i >= 10));
        }
        let mut t = DecisionTree::default();
        t.fit(&d);
        assert!(t.decision(&[15.0]) > 0.0);
        assert!(t.decision(&[5.0]) < 0.0);
    }

    #[test]
    fn importance_concentrates_on_informative_feature() {
        let mut d = Dataset::new(3);
        for i in 0..40 {
            // Feature 1 carries the label; 0 and 2 are constant.
            d.push(&[1.0, i as f64, 2.0], u32::from(i >= 20));
        }
        let mut t = DecisionTree::default();
        t.fit_multiclass(&d);
        let imp = t.feature_importances();
        assert_eq!(imp.len(), 3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(imp[1] > 0.99, "informative feature must dominate: {imp:?}");
    }

    #[test]
    fn stump_has_zero_importance() {
        let cfg = TreeConfig { max_depth: 0, ..Default::default() };
        let mut t = DecisionTree::new(cfg);
        t.fit_multiclass(&xor_data());
        assert!(t.feature_importances().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let mut d = Dataset::new(2);
        d.push(&[1.0, 1.0], 0);
        d.push(&[1.0, 1.0], 1);
        let mut t = DecisionTree::default();
        t.fit_multiclass(&d);
        assert_eq!(t.depth(), 0, "no valid split exists between equal values");
    }
}
