//! Stratified k-fold cross-validation.
//!
//! §5.2 of the paper closes with "to minimize such loss, we need to invest
//! efforts on finding the right level of undersampling ratio (θ)". This
//! module provides the standard tool for that investment: stratified
//! k-fold splits (each fold preserves the class ratio) plus a generic
//! scorer, so callers can pick θ — or any other hyper-parameter — on
//! training data alone.

use crate::data::Dataset;
use crate::eval::roc_auc;
use crate::Classifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stratified fold assignment: returns `folds[i]` = fold index of sample
/// `i`, with positives and negatives spread evenly across `k` folds.
///
/// # Panics
/// Panics if `k < 2` or the dataset has fewer than `k` samples of either
/// class.
pub fn stratified_folds(data: &Dataset, k: usize, seed: u64) -> Vec<usize> {
    assert!(k >= 2, "need at least 2 folds");
    let mut pos: Vec<usize> = (0..data.len()).filter(|&i| data.label_bool(i)).collect();
    let mut neg: Vec<usize> = (0..data.len()).filter(|&i| !data.label_bool(i)).collect();
    assert!(
        pos.len() >= k && neg.len() >= k,
        "need at least k samples per class (pos {}, neg {}, k {k})",
        pos.len(),
        neg.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    for part in [&mut pos, &mut neg] {
        for i in (1..part.len()).rev() {
            part.swap(i, rng.random_range(0..=i));
        }
    }
    let mut folds = vec![0usize; data.len()];
    for (j, &i) in pos.iter().enumerate() {
        folds[i] = j % k;
    }
    for (j, &i) in neg.iter().enumerate() {
        folds[i] = j % k;
    }
    folds
}

/// Mean cross-validated ROC AUC of a classifier family on a dataset.
/// `make` builds a fresh classifier per fold.
pub fn cv_auc<C: Classifier, F: Fn() -> C>(data: &Dataset, k: usize, seed: u64, make: F) -> f64 {
    let folds = stratified_folds(data, k, seed);
    let mut total = 0.0;
    for fold in 0..k {
        let train_idx: Vec<usize> = (0..data.len()).filter(|&i| folds[i] != fold).collect();
        let test_idx: Vec<usize> = (0..data.len()).filter(|&i| folds[i] == fold).collect();
        let train = data.select(&train_idx);
        let mut clf = make();
        clf.fit(&train);
        let scores: Vec<f64> = test_idx.iter().map(|&i| clf.decision(data.row(i))).collect();
        let truth: Vec<bool> = test_idx.iter().map(|&i| data.label_bool(i)).collect();
        total += roc_auc(&scores, &truth);
    }
    total / k as f64
}

/// Picks the undersampling ratio θ (negatives per positive) from a
/// candidate list by cross-validated AUC on the *training* data — the §5.2
/// "invest efforts in finding the right θ" procedure. Returns the winning
/// θ and its CV AUC.
pub fn select_theta<C: Classifier, F: Fn() -> C>(
    data: &Dataset,
    thetas: &[f64],
    k: usize,
    seed: u64,
    make: F,
) -> (f64, f64) {
    assert!(!thetas.is_empty());
    let mut best = (thetas[0], f64::MIN);
    for &theta in thetas {
        let sampled = data.undersample(theta, seed ^ theta.to_bits());
        let (neg, pos) = sampled.binary_counts();
        if pos < k || neg < k {
            continue; // not enough data at this ratio
        }
        let auc = cv_auc(&sampled, k, seed, &make);
        if auc > best.1 {
            best = (theta, auc);
        }
    }
    assert!(best.1 > f64::MIN, "no θ candidate left enough data for {k}-fold CV");
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svm::LinearSvm;

    fn blobs(n: usize, gap: f64, pos_frac: f64) -> Dataset {
        let mut d = Dataset::new(2);
        let mut s = 9u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..n {
            let y = (i as f64 / n as f64) < pos_frac;
            let c = if y { gap } else { -gap };
            d.push(&[c + next(), next()], u32::from(y));
        }
        d
    }

    #[test]
    fn folds_are_stratified() {
        let d = blobs(100, 1.0, 0.2);
        let folds = stratified_folds(&d, 5, 1);
        for fold in 0..5 {
            let pos = (0..d.len()).filter(|&i| folds[i] == fold && d.label_bool(i)).count();
            let neg = (0..d.len()).filter(|&i| folds[i] == fold && !d.label_bool(i)).count();
            assert_eq!(pos, 4, "20 positives over 5 folds");
            assert_eq!(neg, 16, "80 negatives over 5 folds");
        }
    }

    #[test]
    fn folds_deterministic_per_seed() {
        let d = blobs(60, 1.0, 0.5);
        assert_eq!(stratified_folds(&d, 3, 7), stratified_folds(&d, 3, 7));
        assert_ne!(stratified_folds(&d, 3, 7), stratified_folds(&d, 3, 8));
    }

    #[test]
    fn cv_auc_high_on_separable_low_on_noise() {
        let separable = blobs(200, 2.0, 0.5);
        let auc = cv_auc(&separable, 4, 1, || LinearSvm::seeded(1));
        assert!(auc > 0.95, "separable data should CV near-perfectly, got {auc}");

        // Labels independent of features → AUC ≈ 0.5.
        let mut noise = Dataset::new(2);
        let mut s = 3u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..200 {
            noise.push(&[next(), next()], u32::from(i % 2 == 0));
        }
        let auc = cv_auc(&noise, 4, 1, || LinearSvm::seeded(1));
        assert!((auc - 0.5).abs() < 0.12, "noise should CV near 0.5, got {auc}");
    }

    #[test]
    fn select_theta_returns_a_candidate() {
        let d = blobs(400, 1.5, 0.05); // imbalanced 5% positive
        let (theta, auc) = select_theta(&d, &[1.0, 5.0, 15.0], 3, 2, || LinearSvm::seeded(2));
        assert!([1.0, 5.0, 15.0].contains(&theta));
        assert!(auc > 0.8, "separable imbalanced data should still CV well, got {auc}");
    }

    #[test]
    #[should_panic(expected = "at least k samples")]
    fn too_few_positives_panics() {
        let mut d = Dataset::new(1);
        for i in 0..20 {
            d.push(&[i as f64], u32::from(i == 0));
        }
        stratified_folds(&d, 3, 1);
    }
}
