//! Primal linear SVM trained with Pegasos-style projected SGD.
//!
//! Shalev-Shwartz et al.'s Pegasos minimizes
//! `λ/2 ‖w‖² + (1/n) Σ max(0, 1 − yᵢ(w·xᵢ + b))`
//! with step size `1/(λt)` and an optional projection onto the
//! `1/√λ`-ball. The trained weight vector `w` is exposed raw because the
//! paper's Figure 12 analyzes normalized `|w|` coefficients as feature
//! importances.
//!
//! An optional positive-class weight is available, but the paper (and the
//! LinkLens pipeline) addresses imbalance via undersampling instead — the
//! weight defaults to 1.

use crate::data::Dataset;
use crate::Classifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Linear SVM configuration + trained state.
#[derive(Clone, Debug)]
pub struct LinearSvm {
    /// L2 regularization strength λ.
    pub lambda: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Multiplier on the hinge loss of positive samples.
    pub positive_weight: f64,
    /// RNG seed for sample ordering.
    pub seed: u64,
    weights: Vec<f64>,
    bias: f64,
}

impl Default for LinearSvm {
    fn default() -> Self {
        LinearSvm {
            lambda: 1e-4,
            epochs: 30,
            positive_weight: 1.0,
            seed: 42,
            weights: Vec::new(),
            bias: 0.0,
        }
    }
}

impl LinearSvm {
    /// Creates an SVM with the default hyper-parameters and the given seed.
    pub fn seeded(seed: u64) -> Self {
        LinearSvm { seed, ..Default::default() }
    }

    /// The trained weight vector (empty before `fit`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The trained bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Normalized absolute feature coefficients: `|wᵢ| / Σ|wⱼ|` — the
    /// quantity summed over top-N metrics in the paper's Figure 12.
    pub fn normalized_coefficients(&self) -> Vec<f64> {
        let total: f64 = self.weights.iter().map(|w| w.abs()).sum();
        if total == 0.0 {
            return vec![0.0; self.weights.len()];
        }
        self.weights.iter().map(|w| w.abs() / total).collect()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, data: &Dataset) {
        let n = data.len();
        assert!(n > 0, "cannot fit on an empty dataset");
        let d = data.n_features();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let radius = 1.0 / self.lambda.sqrt();

        let mut t = 1.0f64;
        for _epoch in 0..self.epochs {
            for _ in 0..n {
                let i = rng.random_range(0..n);
                let x = data.row(i);
                let y = if data.label_bool(i) { 1.0 } else { -1.0 };
                let cls_w = if y > 0.0 { self.positive_weight } else { 1.0 };
                let eta = 1.0 / (self.lambda * t);
                let margin = y * (dot(&self.weights, x) + self.bias);
                // Regularization shrinkage (w only — b is unregularized).
                let shrink = 1.0 - eta * self.lambda;
                for w in &mut self.weights {
                    *w *= shrink;
                }
                if margin < 1.0 {
                    let step = eta * cls_w * y;
                    for (w, &xi) in self.weights.iter_mut().zip(x) {
                        *w += step * xi;
                    }
                    self.bias += step;
                }
                // Project onto the 1/√λ ball (Pegasos step 3).
                let norm = dot(&self.weights, &self.weights).sqrt();
                if norm > radius {
                    let f = radius / norm;
                    for w in &mut self.weights {
                        *w *= f;
                    }
                }
                t += 1.0;
            }
        }
    }

    fn decision(&self, row: &[f64]) -> f64 {
        dot(&self.weights, row) + self.bias
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::accuracy;

    /// Linearly separable blobs along the first feature.
    fn blobs(n: usize, gap: f64) -> Dataset {
        let mut d = Dataset::new(2);
        let mut rng_state = 1u64;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..n {
            let y = i % 2 == 0;
            let center = if y { gap } else { -gap };
            d.push(&[center + next(), next()], u32::from(y));
        }
        d
    }

    #[test]
    fn separable_data_is_learned() {
        let d = blobs(200, 2.0);
        let mut svm = LinearSvm::seeded(1);
        svm.fit(&d);
        let preds: Vec<bool> = (0..d.len()).map(|i| svm.predict(d.row(i))).collect();
        let truth: Vec<bool> = (0..d.len()).map(|i| d.label_bool(i)).collect();
        assert!(accuracy(&preds, &truth) > 0.97);
    }

    #[test]
    fn informative_feature_gets_the_weight() {
        let d = blobs(400, 2.0);
        let mut svm = LinearSvm::seeded(2);
        svm.fit(&d);
        let coef = svm.normalized_coefficients();
        assert!(coef[0] > 0.8, "feature 0 carries the signal, got {coef:?}");
        assert!((coef.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decision_scores_rank_by_margin() {
        let d = blobs(200, 2.0);
        let mut svm = LinearSvm::seeded(3);
        svm.fit(&d);
        assert!(svm.decision(&[3.0, 0.0]) > svm.decision(&[0.5, 0.0]));
        assert!(svm.decision(&[0.5, 0.0]) > svm.decision(&[-3.0, 0.0]));
    }

    #[test]
    fn training_is_deterministic() {
        let d = blobs(100, 1.0);
        let mut a = LinearSvm::seeded(7);
        let mut b = LinearSvm::seeded(7);
        a.fit(&d);
        b.fit(&d);
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.bias(), b.bias());
    }

    #[test]
    fn positive_weight_shifts_the_boundary() {
        // Highly imbalanced: 95 negatives, 5 positives, overlapping.
        let mut d = Dataset::new(1);
        for i in 0..95 {
            d.push(&[-0.2 + (i % 10) as f64 * 0.02], 0);
        }
        for i in 0..5 {
            d.push(&[0.1 + i as f64 * 0.02], 1);
        }
        let mut plain = LinearSvm::seeded(4);
        plain.fit(&d);
        let mut weighted = LinearSvm { positive_weight: 19.0, ..LinearSvm::seeded(4) };
        weighted.fit(&d);
        // The weighted model must be at least as positive-happy.
        let probe = 0.05;
        assert!(weighted.decision(&[probe]) >= plain.decision(&[probe]));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_fit_panics() {
        let d = Dataset::new(2);
        LinearSvm::default().fit(&d);
    }
}
