//! Dense datasets, standardization, shuffling and undersampling.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense feature matrix with integer class labels.
///
/// Binary pipelines use labels `{0, 1}`; the §4.3 algorithm-selection tree
/// uses one class per metric. Rows are stored contiguously.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    features: Vec<f64>,
    labels: Vec<u32>,
    n_features: usize,
}

impl Dataset {
    /// Creates an empty dataset with `n_features` columns.
    pub fn new(n_features: usize) -> Self {
        Dataset { features: Vec::new(), labels: Vec::new(), n_features }
    }

    /// Appends one sample.
    ///
    /// # Panics
    /// Panics if `row.len() != n_features`.
    pub fn push(&mut self, row: &[f64], label: u32) {
        assert_eq!(row.len(), self.n_features, "feature width mismatch");
        self.features.extend_from_slice(row);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Feature row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Class label of sample `i`.
    pub fn label(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// Label of sample `i` as a binary bool (`label != 0`).
    pub fn label_bool(&self, i: usize) -> bool {
        self.labels[i] != 0
    }

    /// Number of distinct classes (max label + 1).
    pub fn n_classes(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m as usize + 1)
    }

    /// Counts of (negative, positive) samples under the binary reading.
    pub fn binary_counts(&self) -> (usize, usize) {
        let pos = self.labels.iter().filter(|&&l| l != 0).count();
        (self.len() - pos, pos)
    }

    /// Returns a new dataset containing the given sample indices, in order.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.n_features);
        for &i in indices {
            out.push(self.row(i), self.labels[i]);
        }
        out
    }

    /// Deterministic Fisher–Yates shuffle.
    pub fn shuffled(&self, seed: u64) -> Dataset {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..idx.len()).rev() {
            idx.swap(i, rng.random_range(0..=i));
        }
        self.select(&idx)
    }

    /// The paper's undersampling operator (§5.2 / Fig. 10): keep *all*
    /// positive samples, and draw `positives × negatives_per_positive`
    /// negatives without replacement (capped at what exists). The ratio
    /// θ = 1 : `negatives_per_positive`.
    ///
    /// Returns a shuffled dataset so SGD-trained models see mixed batches.
    pub fn undersample(&self, negatives_per_positive: f64, seed: u64) -> Dataset {
        assert!(negatives_per_positive > 0.0, "ratio must be positive");
        let positives: Vec<usize> = (0..self.len()).filter(|&i| self.label_bool(i)).collect();
        let mut negatives: Vec<usize> = (0..self.len()).filter(|&i| !self.label_bool(i)).collect();
        let want = ((positives.len() as f64 * negatives_per_positive).round() as usize)
            .min(negatives.len());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD05E_55A1);
        // Partial Fisher–Yates: the first `want` slots become the sample.
        for i in 0..want {
            let j = rng.random_range(i..negatives.len());
            negatives.swap(i, j);
        }
        negatives.truncate(want);
        let mut keep = positives;
        keep.extend(negatives);
        self.select(&keep).shuffled(seed ^ 0x51AB_17E5)
    }

    /// Fits a standardizer (per-feature mean/std) on this dataset.
    pub fn fit_scaler(&self) -> Scaler {
        let n = self.len().max(1) as f64;
        let mut mean = vec![0.0; self.n_features];
        for i in 0..self.len() {
            for (m, &x) in mean.iter_mut().zip(self.row(i)) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; self.n_features];
        for i in 0..self.len() {
            for ((v, &m), &x) in var.iter_mut().zip(&mean).zip(self.row(i)) {
                *v += (x - m) * (x - m);
            }
        }
        let std: Vec<f64> =
            var.iter().map(|&v| (v / n).sqrt()).map(|s| if s < 1e-12 { 1.0 } else { s }).collect();
        Scaler { mean, std }
    }

    /// Applies a scaler, returning the standardized dataset.
    pub fn scaled_by(&self, scaler: &Scaler) -> Dataset {
        let mut out = Dataset::new(self.n_features);
        let mut buf = vec![0.0; self.n_features];
        for i in 0..self.len() {
            scaler.transform_into(self.row(i), &mut buf);
            out.push(&buf, self.labels[i]);
        }
        out
    }
}

/// Per-feature standardization (z-score) fitted on training data and
/// applied to both train and test rows — constant features get unit scale.
#[derive(Clone, Debug)]
pub struct Scaler {
    /// Per-feature means.
    pub mean: Vec<f64>,
    /// Per-feature standard deviations (never zero).
    pub std: Vec<f64>,
}

impl Scaler {
    /// Standardizes `row` into `out`.
    pub fn transform_into(&self, row: &[f64], out: &mut [f64]) {
        for i in 0..row.len() {
            out[i] = (row[i] - self.mean[i]) / self.std[i];
        }
    }

    /// Standardizes `row`, allocating.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; row.len()];
        self.transform_into(row, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(2);
        d.push(&[1.0, 10.0], 1);
        d.push(&[2.0, 20.0], 0);
        d.push(&[3.0, 30.0], 0);
        d.push(&[4.0, 40.0], 1);
        d
    }

    #[test]
    fn push_and_access() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(2), &[3.0, 30.0]);
        assert_eq!(d.label(3), 1);
        assert_eq!(d.binary_counts(), (2, 2));
    }

    #[test]
    fn select_preserves_rows() {
        let d = toy();
        let s = d.select(&[3, 0]);
        assert_eq!(s.row(0), &[4.0, 40.0]);
        assert_eq!(s.label(1), 1);
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let d = toy();
        let a = d.shuffled(9);
        let b = d.shuffled(9);
        assert_eq!(a.row(0), b.row(0));
        let mut firsts: Vec<f64> = (0..4).map(|i| a.row(i)[0]).collect();
        firsts.sort_by(f64::total_cmp);
        assert_eq!(firsts, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn undersample_keeps_all_positives() {
        let mut d = Dataset::new(1);
        for i in 0..100 {
            d.push(&[i as f64], 0);
        }
        for i in 0..5 {
            d.push(&[1000.0 + i as f64], 1);
        }
        let u = d.undersample(2.0, 1);
        let (neg, pos) = u.binary_counts();
        assert_eq!(pos, 5);
        assert_eq!(neg, 10);
    }

    #[test]
    fn undersample_caps_at_available_negatives() {
        let mut d = Dataset::new(1);
        d.push(&[0.0], 0);
        d.push(&[1.0], 1);
        d.push(&[2.0], 1);
        let u = d.undersample(100.0, 1);
        let (neg, pos) = u.binary_counts();
        assert_eq!((neg, pos), (1, 2));
    }

    #[test]
    fn scaler_standardizes_train_data() {
        let d = toy();
        let sc = d.fit_scaler();
        let s = d.scaled_by(&sc);
        for f in 0..2 {
            let mean: f64 = (0..4).map(|i| s.row(i)[f]).sum::<f64>() / 4.0;
            let var: f64 = (0..4).map(|i| s.row(i)[f].powi(2)).sum::<f64>() / 4.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn scaler_constant_feature_is_safe() {
        let mut d = Dataset::new(1);
        d.push(&[5.0], 0);
        d.push(&[5.0], 1);
        let sc = d.fit_scaler();
        let t = sc.transform(&[5.0]);
        assert_eq!(t, vec![0.0]);
        assert!(t[0].is_finite());
    }

    #[test]
    fn n_classes_counts_max_label() {
        let mut d = Dataset::new(1);
        d.push(&[0.0], 0);
        d.push(&[1.0], 4);
        assert_eq!(d.n_classes(), 5);
    }
}
