//! Gaussian naive Bayes.

use crate::data::Dataset;
use crate::Classifier;

/// Gaussian naive Bayes: per-class, per-feature normal likelihoods with a
/// variance floor for numerical safety. `decision` returns the posterior
/// log-odds `log P(+|x) − log P(−|x)`.
#[derive(Clone, Debug, Default)]
pub struct GaussianNaiveBayes {
    /// Per-class feature means (index 0 = negative, 1 = positive).
    means: [Vec<f64>; 2],
    /// Per-class feature variances.
    vars: [Vec<f64>; 2],
    /// Log class priors.
    log_prior: [f64; 2],
    fitted: bool,
}

impl GaussianNaiveBayes {
    /// Creates an unfitted model.
    pub fn new() -> Self {
        Self::default()
    }
}

const VAR_FLOOR: f64 = 1e-9;

impl Classifier for GaussianNaiveBayes {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let d = data.n_features();
        let mut counts = [0usize; 2];
        self.means = [vec![0.0; d], vec![0.0; d]];
        self.vars = [vec![0.0; d], vec![0.0; d]];
        for i in 0..data.len() {
            let c = usize::from(data.label_bool(i));
            counts[c] += 1;
            for (m, &x) in self.means[c].iter_mut().zip(data.row(i)) {
                *m += x;
            }
        }
        assert!(
            counts[0] > 0 && counts[1] > 0,
            "Gaussian NB needs at least one sample of each class"
        );
        for (c, count) in counts.iter().enumerate() {
            for m in &mut self.means[c] {
                *m /= *count as f64;
            }
        }
        for i in 0..data.len() {
            let c = usize::from(data.label_bool(i));
            for ((v, &m), &x) in self.vars[c].iter_mut().zip(&self.means[c]).zip(data.row(i)) {
                *v += (x - m) * (x - m);
            }
        }
        for (c, count) in counts.iter().enumerate() {
            for v in &mut self.vars[c] {
                *v = (*v / *count as f64).max(VAR_FLOOR);
            }
        }
        let n = data.len() as f64;
        self.log_prior = [(counts[0] as f64 / n).ln(), (counts[1] as f64 / n).ln()];
        self.fitted = true;
    }

    fn decision(&self, row: &[f64]) -> f64 {
        assert!(self.fitted, "decision before fit");
        let mut ll = [self.log_prior[0], self.log_prior[1]];
        for (c, llc) in ll.iter_mut().enumerate() {
            for ((&m, &v), &x) in self.means[c].iter().zip(&self.vars[c]).zip(row) {
                *llc += -0.5 * ((x - m) * (x - m) / v + v.ln() + (2.0 * std::f64::consts::PI).ln());
            }
        }
        ll[1] - ll[0]
    }

    fn name(&self) -> &'static str {
        "NB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_blobs() -> Dataset {
        // Deterministic pseudo-noise around ±1.5 on feature 0.
        let mut d = Dataset::new(2);
        let mut s = 11u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..400 {
            let y = i % 2 == 0;
            let c = if y { 1.5 } else { -1.5 };
            d.push(&[c + next(), next()], u32::from(y));
        }
        d
    }

    #[test]
    fn learns_blobs() {
        let d = gaussian_blobs();
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&d);
        let correct = (0..d.len()).filter(|&i| nb.predict(d.row(i)) == d.label_bool(i)).count();
        assert!(correct as f64 / d.len() as f64 > 0.97);
    }

    #[test]
    fn decision_sign_tracks_class() {
        let d = gaussian_blobs();
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&d);
        assert!(nb.decision(&[2.0, 0.0]) > 0.0);
        assert!(nb.decision(&[-2.0, 0.0]) < 0.0);
    }

    #[test]
    fn priors_affect_decision() {
        // Same likelihoods, skewed priors → boundary shifts.
        let mut d = Dataset::new(1);
        for _ in 0..90 {
            d.push(&[-1.0], 0);
        }
        for _ in 0..10 {
            d.push(&[1.0], 1);
        }
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&d);
        // Exactly between the class means, the prior dominates.
        assert!(nb.decision(&[0.0]) < 0.0);
    }

    #[test]
    fn constant_feature_is_safe() {
        let mut d = Dataset::new(2);
        d.push(&[1.0, 7.0], 0);
        d.push(&[1.0, 7.0], 0);
        d.push(&[2.0, 7.0], 1);
        d.push(&[2.0, 7.0], 1);
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&d);
        let score = nb.decision(&[1.5, 7.0]);
        assert!(score.is_finite());
    }

    #[test]
    #[should_panic(expected = "each class")]
    fn single_class_panics() {
        let mut d = Dataset::new(1);
        d.push(&[0.0], 0);
        d.push(&[1.0], 0);
        GaussianNaiveBayes::new().fit(&d);
    }
}
