//! Classifier evaluation utilities: accuracy, precision/recall, ROC AUC.

/// Fraction of predictions matching the truth.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn accuracy(predictions: &[bool], truth: &[bool]) -> f64 {
    assert_eq!(predictions.len(), truth.len());
    assert!(!truth.is_empty(), "no samples");
    let correct = predictions.iter().zip(truth).filter(|(p, t)| p == t).count();
    correct as f64 / truth.len() as f64
}

/// Precision and recall of the positive class. Either is 0 when its
/// denominator is 0.
pub fn precision_recall(predictions: &[bool], truth: &[bool]) -> (f64, f64) {
    assert_eq!(predictions.len(), truth.len());
    let tp = predictions.iter().zip(truth).filter(|&(&p, &t)| p && t).count() as f64;
    let fp = predictions.iter().zip(truth).filter(|&(&p, &t)| p && !t).count() as f64;
    let fn_ = predictions.iter().zip(truth).filter(|&(&p, &t)| !p && t).count() as f64;
    let precision = if tp + fp == 0.0 { 0.0 } else { tp / (tp + fp) };
    let recall = if tp + fn_ == 0.0 { 0.0 } else { tp / (tp + fn_) };
    (precision, recall)
}

/// ROC AUC via the rank statistic (Mann–Whitney U), with tie correction.
/// Returns 0.5 when either class is absent.
///
/// Returns `NaN` when any score is `NaN`: ranking is undefined for NaN, and
/// the tie-averaging pass below groups equal scores with `==`, under which
/// NaN never equals itself — NaNs would land at both ends of the
/// `total_cmp` order (by sign bit) with arbitrary distinct ranks, silently
/// skewing the statistic instead of flagging the bad input.
pub fn roc_auc(scores: &[f64], truth: &[bool]) -> f64 {
    assert_eq!(scores.len(), truth.len());
    if scores.iter().any(|s| s.is_nan()) {
        return f64::NAN;
    }
    let n_pos = truth.iter().filter(|&&t| t).count();
    let n_neg = truth.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank all scores (average ranks for ties).
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = truth.iter().zip(&ranks).filter(|&(&t, _)| t).map(|(_, &r)| r).sum();
    let u = rank_sum_pos - (n_pos as f64 * (n_pos as f64 + 1.0)) / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[true, false, true], &[true, true, true]), 2.0 / 3.0);
        assert_eq!(accuracy(&[true], &[true]), 1.0);
    }

    #[test]
    fn precision_recall_basic() {
        // preds: TP, FP, FN, TN
        let preds = [true, true, false, false];
        let truth = [true, false, true, false];
        let (p, r) = precision_recall(&preds, &truth);
        assert_eq!(p, 0.5);
        assert_eq!(r, 0.5);
    }

    #[test]
    fn precision_recall_degenerate() {
        let (p, r) = precision_recall(&[false, false], &[true, true]);
        assert_eq!(p, 0.0);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn auc_perfect_ranking() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let truth = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &truth), 1.0);
    }

    #[test]
    fn auc_inverted_ranking() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let truth = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &truth), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let truth = [true, false, true, false];
        assert_eq!(roc_auc(&scores, &truth), 0.5);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[0.1, 0.9], &[true, true]), 0.5);
    }

    #[test]
    fn auc_nan_scores_yield_nan_not_a_skewed_rank() {
        // A NaN score must poison the result. Before the guard, -NaN and
        // +NaN sorted to opposite ends under total_cmp and (never being ==)
        // each kept a private rank, producing a plausible-looking AUC.
        let scores = [0.1, f64::NAN, 0.9];
        let truth = [false, true, true];
        assert!(roc_auc(&scores, &truth).is_nan());
        let neg_nan = f64::NAN.copysign(-1.0);
        assert!(roc_auc(&[neg_nan, 0.5, f64::NAN], &[true, false, true]).is_nan());
        // Finite inputs are unaffected.
        assert_eq!(roc_auc(&[0.1, 0.2, 0.9], &[false, false, true]), 1.0);
    }

    #[test]
    fn auc_with_ties_partial() {
        let scores = [0.0, 0.5, 0.5, 1.0];
        let truth = [false, true, false, true];
        // Pairs: (pos .5 vs neg 0): win; (pos .5 vs neg .5): tie 0.5;
        // (pos 1 vs both negs): 2 wins → (1 + 0.5 + 2) / 4 = 0.875.
        assert!((roc_auc(&scores, &truth) - 0.875).abs() < 1e-12);
    }
}
