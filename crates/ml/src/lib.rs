//! # osn-ml
//!
//! From-scratch classifiers for LinkLens — the Rust stand-in for the
//! scikit-learn stack the paper uses (\[34\] in the paper). The paper's
//! classification experiments (§5) need exactly four binary classifiers —
//! linear SVM, logistic regression, naive Bayes, random forest — plus a
//! decision tree for the §4.3 network→algorithm selection, so those are
//! what this crate provides:
//!
//! * [`data::Dataset`] — dense feature matrix with integer class labels,
//!   standardization, deterministic shuffling and the *undersampling*
//!   operator (keep all positives, subsample negatives at ratio θ) that
//!   drives Figure 10.
//! * [`svm::LinearSvm`] — primal linear SVM trained with Pegasos-style
//!   projected SGD on the hinge loss; exposes the raw `|w|` feature
//!   coefficients the paper analyzes in Figure 12.
//! * [`logistic::LogisticRegression`] — L2-regularized logistic regression
//!   via SGD.
//! * [`naive_bayes::GaussianNaiveBayes`] — per-class Gaussian likelihoods.
//! * [`tree::DecisionTree`] — CART (Gini) with depth/leaf controls,
//!   multi-class support and human-readable rule extraction.
//! * [`forest::RandomForest`] — bootstrap aggregation over CART trees with
//!   feature subsampling; vote share as a decision score.
//! * [`crossval`] — stratified k-fold CV and θ selection (§5.2's "invest
//!   efforts in finding the right undersampling ratio").
//! * [`platt`] — Platt scaling: calibrated probabilities from any
//!   decision score (addresses §8's "binary results lack granularity").
//! * [`eval`] — accuracy, precision/recall, ROC AUC.
//!
//! All training is deterministic given the seed in each model's config.
//! Scores returned by [`Classifier::decision`] are *ranking* scores: higher
//! means more likely positive, which is all the top-k link-prediction
//! pipeline consumes. Absolute calibration is out of scope.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crossval;
pub mod data;
pub mod eval;
pub mod forest;
pub mod logistic;
pub mod naive_bayes;
pub mod platt;
pub mod svm;
pub mod tree;

use data::Dataset;

/// A trained binary classifier usable by the link-prediction pipeline.
pub trait Classifier {
    /// Fits the model to a (binary-labeled) dataset. Labels must be 0/1.
    fn fit(&mut self, data: &Dataset);

    /// Ranking score for one feature row: higher ⇒ more likely positive.
    fn decision(&self, row: &[f64]) -> f64;

    /// Hard binary prediction (default: decision > 0).
    fn predict(&self, row: &[f64]) -> bool {
        self.decision(row) > 0.0
    }

    /// Short display name ("SVM", "LR", "NB", "RF").
    fn name(&self) -> &'static str;
}
