//! L2-regularized logistic regression trained with SGD.

use crate::data::Dataset;
use crate::Classifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Logistic-regression configuration + trained state.
///
/// `decision` returns the log-odds `w·x + b`; use [`Self::probability`] for
/// a calibrated `P(y = 1 | x)`.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    /// L2 regularization strength.
    pub lambda: f64,
    /// Initial learning rate (decays as `η₀ / (1 + t·λ)`).
    pub learning_rate: f64,
    /// Passes over the training data.
    pub epochs: usize,
    /// RNG seed for sample ordering.
    pub seed: u64,
    weights: Vec<f64>,
    bias: f64,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression {
            lambda: 1e-4,
            learning_rate: 0.5,
            epochs: 30,
            seed: 42,
            weights: Vec::new(),
            bias: 0.0,
        }
    }
}

impl LogisticRegression {
    /// Creates a model with default hyper-parameters and the given seed.
    pub fn seeded(seed: u64) -> Self {
        LogisticRegression { seed, ..Default::default() }
    }

    /// `P(y = 1 | x)` under the fitted model.
    pub fn probability(&self, row: &[f64]) -> f64 {
        sigmoid(self.decision(row))
    }

    /// The trained weight vector (empty before `fit`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, data: &Dataset) {
        let n = data.len();
        assert!(n > 0, "cannot fit on an empty dataset");
        self.weights = vec![0.0; data.n_features()];
        self.bias = 0.0;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut t = 0.0f64;
        for _ in 0..self.epochs {
            for _ in 0..n {
                let i = rng.random_range(0..n);
                let x = data.row(i);
                let y = f64::from(u8::from(data.label_bool(i)));
                let eta = self.learning_rate / (1.0 + t * self.lambda * self.learning_rate);
                let p = sigmoid(dot(&self.weights, x) + self.bias);
                let err = y - p;
                for (w, &xi) in self.weights.iter_mut().zip(x) {
                    *w += eta * (err * xi - self.lambda * *w);
                }
                self.bias += eta * err;
                t += 1.0;
            }
        }
    }

    fn decision(&self, row: &[f64]) -> f64 {
        dot(&self.weights, row) + self.bias
    }

    fn name(&self) -> &'static str {
        "LR"
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, gap: f64) -> Dataset {
        let mut d = Dataset::new(2);
        let mut s = 5u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..n {
            let y = i % 2 == 0;
            let c = if y { gap } else { -gap };
            d.push(&[c + next(), next()], u32::from(y));
        }
        d
    }

    #[test]
    fn separable_data_learned() {
        let d = blobs(300, 1.5);
        let mut lr = LogisticRegression::seeded(1);
        lr.fit(&d);
        let correct = (0..d.len()).filter(|&i| lr.predict(d.row(i)) == d.label_bool(i)).count();
        assert!(correct as f64 / d.len() as f64 > 0.97);
    }

    #[test]
    fn probabilities_are_monotone_in_feature() {
        let d = blobs(300, 1.5);
        let mut lr = LogisticRegression::seeded(2);
        lr.fit(&d);
        let p_neg = lr.probability(&[-2.0, 0.0]);
        let p_mid = lr.probability(&[0.0, 0.0]);
        let p_pos = lr.probability(&[2.0, 0.0]);
        assert!(p_neg < p_mid && p_mid < p_pos);
        assert!(p_neg < 0.1 && p_pos > 0.9);
    }

    #[test]
    fn probabilities_bounded() {
        let d = blobs(100, 3.0);
        let mut lr = LogisticRegression::seeded(3);
        lr.fit(&d);
        for x in [-100.0, -1.0, 0.0, 1.0, 100.0] {
            let p = lr.probability(&[x, 0.0]);
            assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        }
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert!(sigmoid(-1000.0).abs() < 1e-300);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_training() {
        let d = blobs(100, 1.0);
        let mut a = LogisticRegression::seeded(9);
        let mut b = LogisticRegression::seeded(9);
        a.fit(&d);
        b.fit(&d);
        assert_eq!(a.weights(), b.weights());
    }
}
