//! Property tests for the ML substrate: classifiers must learn separable
//! data regardless of scale/offset, trees must respect their structural
//! invariants, and the data utilities must preserve sample integrity.

use osn_ml::data::Dataset;
use osn_ml::forest::RandomForest;
use osn_ml::logistic::LogisticRegression;
use osn_ml::naive_bayes::GaussianNaiveBayes;
use osn_ml::svm::LinearSvm;
use osn_ml::tree::{DecisionTree, TreeConfig};
use osn_ml::Classifier;
use proptest::prelude::*;

/// Separable two-feature data with arbitrary affine placement.
fn separable(n_per_class: usize, center: f64, gap: f64, scale: f64, noise_seed: u64) -> Dataset {
    let mut d = Dataset::new(2);
    let mut s = noise_seed.max(1);
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    };
    for i in 0..n_per_class * 2 {
        let y = i % 2 == 0;
        let c = center + if y { gap } else { -gap };
        d.push(&[c * scale + next() * 0.2 * gap * scale, next()], u32::from(y));
    }
    d
}

fn train_accuracy<C: Classifier>(clf: &mut C, d: &Dataset) -> f64 {
    // Standardize as the pipeline does.
    let scaler = d.fit_scaler();
    let scaled = d.scaled_by(&scaler);
    clf.fit(&scaled);
    let correct =
        (0..scaled.len()).filter(|&i| clf.predict(scaled.row(i)) == scaled.label_bool(i)).count();
    correct as f64 / d.len() as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn svm_learns_any_affine_placement(center in -50.0f64..50.0, gap in 0.5f64..5.0,
                                       scale in 0.1f64..10.0, seed in 1u64..500) {
        let d = separable(60, center, gap, scale, seed);
        let mut svm = LinearSvm::seeded(seed);
        prop_assert!(train_accuracy(&mut svm, &d) > 0.9);
    }

    #[test]
    fn logistic_learns_any_affine_placement(center in -50.0f64..50.0, gap in 0.5f64..5.0,
                                            scale in 0.1f64..10.0, seed in 1u64..500) {
        let d = separable(60, center, gap, scale, seed);
        let mut lr = LogisticRegression::seeded(seed);
        prop_assert!(train_accuracy(&mut lr, &d) > 0.9);
    }

    #[test]
    fn nb_learns_any_affine_placement(center in -50.0f64..50.0, gap in 1.0f64..5.0,
                                      scale in 0.1f64..10.0, seed in 1u64..500) {
        let d = separable(60, center, gap, scale, seed);
        let mut nb = GaussianNaiveBayes::new();
        prop_assert!(train_accuracy(&mut nb, &d) > 0.9);
    }

    #[test]
    fn forest_learns_any_affine_placement(center in -20.0f64..20.0, gap in 1.0f64..5.0,
                                          seed in 1u64..200) {
        let d = separable(40, center, gap, 1.0, seed);
        let mut rf = RandomForest::seeded(seed);
        rf.n_trees = 15;
        rf.max_depth = 6;
        prop_assert!(train_accuracy(&mut rf, &d) > 0.9);
    }

    #[test]
    fn tree_depth_respects_config(max_depth in 0usize..6, seed in 1u64..100) {
        let d = separable(30, 0.0, 2.0, 1.0, seed);
        let mut tree = DecisionTree::new(TreeConfig { max_depth, ..Default::default() });
        tree.fit_multiclass(&d);
        prop_assert!(tree.depth() <= max_depth);
    }

    #[test]
    fn tree_probabilities_are_probabilities(seed in 1u64..100) {
        let d = separable(30, 0.0, 1.0, 1.0, seed);
        let mut tree = DecisionTree::default();
        tree.fit_multiclass(&d);
        for i in 0..d.len() {
            let p0 = tree.class_probability(d.row(i), 0);
            let p1 = tree.class_probability(d.row(i), 1);
            prop_assert!((p0 + p1 - 1.0).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&p0));
        }
    }

    #[test]
    fn undersample_never_invents_samples(n_pos in 1usize..10, n_neg in 1usize..60,
                                         theta in 0.5f64..30.0, seed in 0u64..50) {
        let mut d = Dataset::new(1);
        for i in 0..n_neg { d.push(&[i as f64], 0); }
        for i in 0..n_pos { d.push(&[-(1.0 + i as f64)], 1); }
        let u = d.undersample(theta, seed);
        // Every row of the output exists in the input with the same label.
        for i in 0..u.len() {
            let x = u.row(i)[0];
            let label = u.label(i);
            let found = (0..d.len()).any(|j| d.row(j)[0] == x && d.label(j) == label);
            prop_assert!(found, "row {x} label {label} not in source");
        }
    }

    #[test]
    fn scaler_is_invertible_information(seed in 1u64..100) {
        let d = separable(20, 5.0, 2.0, 3.0, seed);
        let scaler = d.fit_scaler();
        let s = d.scaled_by(&scaler);
        // Relative order along each feature is preserved.
        for f in 0..2 {
            for i in 1..d.len() {
                let before = d.row(i)[f].total_cmp(&d.row(i - 1)[f]);
                let after = s.row(i)[f].total_cmp(&s.row(i - 1)[f]);
                prop_assert_eq!(before, after);
            }
        }
    }
}
