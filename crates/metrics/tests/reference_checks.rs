//! Randomized reference checks: the approximate metric implementations
//! (Katz-lr, Katz-sc, PPR, LRW) against brute-force/dense computations on
//! small random graphs.

use osn_graph::snapshot::Snapshot;
use osn_graph::NodeId;
use osn_metrics::katz::{exact_katz_truncated, KatzLr, KatzSc};
use osn_metrics::traits::Metric;
use osn_metrics::walk::LocalRandomWalk;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (5usize..=12).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32)
            .prop_filter("no loop", |(a, b)| a != b)
            .prop_map(|(a, b)| osn_graph::canonical(a, b));
        proptest::collection::vec(edge, 2..25).prop_map(move |mut e| {
            e.sort_unstable();
            e.dedup();
            (n, e)
        })
    })
}

fn unconnected_pairs(snap: &Snapshot) -> Vec<(NodeId, NodeId)> {
    let n = snap.node_count() as NodeId;
    let mut out = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            if !snap.has_edge(u, v) {
                out.push((u, v));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn katz_lr_small_graphs_are_exact((n, edges) in arb_graph()) {
        // For n ≤ 256 KatzLr takes the dense-eigen path: full rank must be
        // numerically exact against (I − βA)⁻¹ − I truncated to many terms.
        let snap = Snapshot::from_edges(n, &edges);
        let pairs = unconnected_pairs(&snap);
        prop_assume!(!pairs.is_empty());
        let beta = 0.05;
        let lr = KatzLr { beta, rank: n, max_iter: 50, seed: 2 };
        let got = lr.score_pairs(&snap, &pairs);
        // 30 series terms converge far below tolerance for βλ ≤ 0.6.
        let reference = exact_katz_truncated(&snap, beta, 30);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let want = reference[(u as usize, v as usize)];
            prop_assert!((got[i] - want).abs() < 1e-6,
                "pair {:?}: got {} want {}", (u, v), got[i], want);
        }
    }

    #[test]
    fn katz_sc_full_landmarks_match_series((n, edges) in arb_graph()) {
        let snap = Snapshot::from_edges(n, &edges);
        let pairs = unconnected_pairs(&snap);
        prop_assume!(!pairs.is_empty());
        let beta = 0.05;
        let terms = 4;
        let sc = KatzSc { beta, landmarks: n, series_terms: terms, ridge: 1e-12 };
        let got = sc.score_pairs(&snap, &pairs);
        let reference = exact_katz_truncated(&snap, beta, terms);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let want = reference[(u as usize, v as usize)];
            // Nyström with all landmarks is exact up to the ridge + solver
            // conditioning; allow a loose absolute tolerance.
            prop_assert!((got[i] - want).abs() < 1e-4,
                "pair {:?}: got {} want {}", (u, v), got[i], want);
        }
    }

    #[test]
    fn lrw_matches_dense_power_iteration((n, edges) in arb_graph()) {
        let snap = Snapshot::from_edges(n, &edges);
        let pairs = unconnected_pairs(&snap);
        prop_assume!(!pairs.is_empty());
        let steps = 3;
        let lrw = LocalRandomWalk { steps, prune: 0.0 };
        let got = lrw.score_pairs(&snap, &pairs);

        // Dense reference: P = D⁻¹A row-stochastic (dangling rows absorb),
        // π(m) = eᵤ Pᵐ.
        let mut p = vec![vec![0.0f64; n]; n];
        for (x, row) in p.iter_mut().enumerate() {
            let d = snap.degree(x as NodeId);
            if d == 0 {
                row[x] = 1.0;
            } else {
                for &y in snap.neighbors(x as NodeId) {
                    row[y as usize] = 1.0 / d as f64;
                }
            }
        }
        let walk = |src: usize| -> Vec<f64> {
            let mut v = vec![0.0; n];
            v[src] = 1.0;
            for _ in 0..steps {
                let mut next = vec![0.0; n];
                for (x, row) in p.iter().enumerate() {
                    if v[x] == 0.0 { continue; }
                    for (y, &px) in row.iter().enumerate() {
                        next[y] += v[x] * px;
                    }
                }
                v = next;
            }
            v
        };
        let two_e = (2 * snap.edge_count()) as f64;
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let puv = walk(u as usize)[v as usize];
            let pvu = walk(v as usize)[u as usize];
            let want = (snap.degree(u) as f64 / two_e) * puv
                + (snap.degree(v) as f64 / two_e) * pvu;
            prop_assert!((got[i] - want).abs() < 1e-10,
                "pair {:?}: got {} want {}", (u, v), got[i], want);
        }
    }

    #[test]
    fn predict_top_k_consistent_with_score_pairs((n, edges) in arb_graph(), k in 1usize..6) {
        use osn_metrics::candidates::CandidateSet;
        use osn_metrics::traits::CandidatePolicy;
        let snap = Snapshot::from_edges(n, &edges);
        let cands = CandidateSet::build(&snap, CandidatePolicy::TwoHop, 0);
        prop_assume!(!cands.is_empty());
        let metric = osn_metrics::local::ResourceAllocation;
        let top = metric.predict_top_k(&snap, &cands, k, 7);
        let scores = metric.score_pairs(&snap, cands.pairs());
        let expected = osn_metrics::topk::top_k_pairs(cands.pairs(), &scores, k, 7);
        prop_assert_eq!(top, expected);
    }
}
