//! Bit-identity of the source-batched fused scoring kernel: for every
//! local metric (CN, JC, AA, RA, PA, BCN, BAA, BRA), every engine entry
//! point, and every worker count, the fused path must produce *the same
//! bits* as the per-pair reference path — same scores, same top-k pairs in
//! the same order, same enumerated candidates. Runs with audits forced on
//! (the same checks `--paranoid` enables in release), so the kernel also
//! satisfies every metric's score contract along the way.

use osn_graph::snapshot::Snapshot;
use osn_graph::NodeId;
use osn_metrics::candidates::CandidateSet;
use osn_metrics::exec;
use osn_metrics::fused::{self, LocalKind};
use osn_metrics::traits::{CandidatePolicy, Metric};
use proptest::prelude::*;

/// The fused kernel's metrics, paired with their kernel kinds.
fn fused_metrics() -> Vec<(Box<dyn Metric>, LocalKind)> {
    [
        ("CN", LocalKind::Cn),
        ("JC", LocalKind::Jc),
        ("AA", LocalKind::Aa),
        ("RA", LocalKind::Ra),
        ("PA", LocalKind::Pa),
        ("BCN", LocalKind::Bcn),
        ("BAA", LocalKind::Baa),
        ("BRA", LocalKind::Bra),
    ]
    .into_iter()
    .map(|(name, kind)| {
        let m = osn_metrics::metric_by_name(name).expect("known metric");
        assert_eq!(m.fused_kind(), Some(kind), "{name} must advertise its kernel kind");
        (m, kind)
    })
    .collect()
}

/// Random graphs big enough to give multi-source, multi-witness candidate
/// sets but small enough to keep 10 cases × 8 metrics × 4 thread counts
/// fast (the parallel_determinism idiom).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (8usize..=20).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32)
            .prop_filter("no loop", |(a, b)| a != b)
            .prop_map(|(a, b)| osn_graph::canonical(a, b));
        proptest::collection::vec(edge, 4..40).prop_map(move |mut e| {
            e.sort_unstable();
            e.dedup();
            (n, e)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// score_pairs_t (fused dispatch) == the metric's own score_pairs ==
    /// the per-pair engine path, bit for bit, at every thread count, on
    /// both a TwoHop and a Global candidate set (the latter includes
    /// distance-3 and hub pairs the walk must score as zero-witness).
    #[test]
    fn fused_scores_are_bit_identical((n, edges) in arb_graph()) {
        let snap = Snapshot::from_edges(n, &edges);
        for policy in [CandidatePolicy::TwoHop, CandidatePolicy::Global] {
            let cands = CandidateSet::build(&snap, policy, 3);
            prop_assume!(!cands.is_empty());
            for (m, _) in fused_metrics() {
                let direct = m.score_pairs(&snap, cands.pairs());
                for threads in [1usize, 2, 4, 8] {
                    let fused = exec::score_pairs_t(m.as_ref(), &snap, cands.pairs(), threads);
                    prop_assert_eq!(
                        &fused, &direct,
                        "{} fused != direct at {} threads ({:?})", m.name(), threads, policy
                    );
                    let per_pair =
                        exec::score_pairs_per_pair_t(m.as_ref(), &snap, cands.pairs(), threads);
                    prop_assert_eq!(
                        &fused, &per_pair,
                        "{} fused != per-pair at {} threads ({:?})", m.name(), threads, policy
                    );
                }
            }
        }
    }

    /// predict_top_k_t (fused dispatch) returns exactly the pairs — and
    /// the tie-break order — of the per-pair path, at every thread count.
    #[test]
    fn fused_top_k_is_bit_identical((n, edges) in arb_graph()) {
        let snap = Snapshot::from_edges(n, &edges);
        let cands = CandidateSet::build(&snap, CandidatePolicy::TwoHop, 0);
        prop_assume!(!cands.is_empty());
        let k = (cands.len() / 2).max(1);
        for (m, _) in fused_metrics() {
            let baseline =
                exec::predict_top_k_per_pair_t(m.as_ref(), &snap, &cands, k, 0x5EED, 1);
            for threads in [1usize, 2, 4, 8] {
                let fused = exec::predict_top_k_t(m.as_ref(), &snap, &cands, k, 0x5EED, threads);
                prop_assert_eq!(
                    &fused, &baseline,
                    "{} top-k diverged at {} threads", m.name(), threads
                );
            }
        }
    }

    /// The multi-metric engine paths (feature matrix, grouped top-k) with
    /// a mixed batch — fused metrics interleaved with non-fused ones —
    /// equal the per-pair baselines column for column.
    #[test]
    fn fused_group_paths_are_bit_identical((n, edges) in arb_graph()) {
        let snap = Snapshot::from_edges(n, &edges);
        let cands = CandidateSet::build(&snap, CandidatePolicy::Global, 2);
        prop_assume!(!cands.is_empty());
        let metrics = osn_metrics::all_metrics();
        let refs: Vec<&dyn Metric> = metrics.iter().map(|m| m.as_ref()).collect();
        let k = (cands.len() / 2).max(1);
        let matrix_base = exec::score_matrix_per_pair_t(&refs, &snap, cands.pairs(), 1);
        let topk_base = exec::predict_top_k_many_per_pair_t(&refs, &snap, &cands, k, 0x11A5, 1);
        for threads in [1usize, 3] {
            let matrix = exec::score_matrix_t(&refs, &snap, cands.pairs(), threads);
            let topk = exec::predict_top_k_many_t(&refs, &snap, &cands, k, 0x11A5, threads);
            for (i, m) in refs.iter().enumerate() {
                prop_assert_eq!(
                    &matrix[i], &matrix_base[i],
                    "{} matrix column diverged at {} threads", m.name(), threads
                );
                prop_assert_eq!(
                    &topk[i], &topk_base[i],
                    "{} grouped top-k diverged at {} threads", m.name(), threads
                );
            }
        }
    }

    /// Enumerate-and-score fuses candidate enumeration into the scoring
    /// walk: its pair list must equal `CandidateSet::build(TwoHop)` and
    /// its columns the per-pair scores of those pairs, at every thread
    /// count.
    #[test]
    fn fused_enumeration_is_bit_identical((n, edges) in arb_graph()) {
        let snap = Snapshot::from_edges(n, &edges);
        let cands = CandidateSet::build(&snap, CandidatePolicy::TwoHop, 0);
        let pairs_and_kinds = fused_metrics();
        let kinds: Vec<LocalKind> = pairs_and_kinds.iter().map(|&(_, k)| k).collect();
        for threads in [1usize, 2, 8] {
            let (pairs, cols) = fused::enumerate_and_score_t(&snap, &kinds, threads);
            prop_assert_eq!(&pairs[..], cands.pairs(), "pair drift at {} threads", threads);
            for (ki, (m, _)) in pairs_and_kinds.iter().enumerate() {
                prop_assert_eq!(
                    &cols[ki],
                    &m.score_pairs(&snap, &pairs),
                    "{} enumerate-and-score column diverged at {} threads", m.name(), threads
                );
            }
        }
    }
}
