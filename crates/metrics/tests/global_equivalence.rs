//! Batched-vs-reference equivalence for the global metrics: the batched
//! frontier/SpMV engine (multi-source BFS for SP, epoch-stamped 2-walk
//! scans for LP, blocked multi-source iteration for LRW/PPR, SpMM landmark
//! columns for Katz-sc) must reproduce its retained per-source oracle —
//! bit for bit where the algorithm is exact (SP, LP, Katz-sc), within the
//! documented analytic tolerance where it is iterative (LRW, PPR) — at
//! every thread count, and warm-started sweeps must agree with cold
//! starts across a randomized snapshot sequence.

use osn_graph::snapshot::Snapshot;
use osn_graph::NodeId;
use osn_metrics::candidates::CandidateSet;
use osn_metrics::exec;
use osn_metrics::katz::KatzSc;
use osn_metrics::path::{LocalPath, ShortestPath};
use osn_metrics::solver::SolverCache;
use osn_metrics::traits::{CandidatePolicy, Metric};
use osn_metrics::walk::{LocalRandomWalk, PersonalizedPageRank};
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Random graphs in the fused_equivalence size band: large enough to give
/// multi-source batches wider than one MS-BFS word is not feasible at this
/// size, but the batching/grouping machinery (SourcePlan, source-aligned
/// chunks, block widths) is fully exercised.
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (8usize..=24).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32)
            .prop_filter("no loop", |(a, b)| a != b)
            .prop_map(|(a, b)| osn_graph::canonical(a, b));
        proptest::collection::vec(edge, 4..50).prop_map(move |mut e| {
            e.sort_unstable();
            e.dedup();
            (n, e)
        })
    })
}

/// A monotone snapshot sweep: a base edge set plus 2 growth batches, each
/// adding at least one new edge (so every snapshot has a distinct
/// `(nodes, edges)` cache key, as in a real growth trace).
fn arb_sweep() -> impl Strategy<Value = (usize, Vec<Vec<(NodeId, NodeId)>>)> {
    fn edge(n: usize) -> impl Strategy<Value = (NodeId, NodeId)> {
        (0..n as u32, 0..n as u32)
            .prop_filter("no loop", |(a, b)| a != b)
            .prop_map(|(a, b)| osn_graph::canonical(a, b))
    }
    (10usize..=20).prop_flat_map(|n| {
        (
            proptest::collection::vec(edge(n), 6..30),
            proptest::collection::vec(proptest::collection::vec(edge(n), 1..8), 2..=2),
        )
            .prop_map(move |(base, extras)| {
                let mut snapshots = Vec::new();
                let mut acc = base;
                acc.sort_unstable();
                acc.dedup();
                snapshots.push(acc.clone());
                for batch in extras {
                    acc.extend(batch);
                    acc.sort_unstable();
                    acc.dedup();
                    if acc.len() > snapshots.last().unwrap().len() {
                        snapshots.push(acc.clone());
                    }
                }
                (n, snapshots)
            })
    })
}

fn candidate_pairs(snap: &Snapshot) -> Vec<(NodeId, NodeId)> {
    CandidateSet::build(snap, CandidatePolicy::ThreeHop, 0).pairs().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// SP and LP: the batched frontier walkers (MS-BFS / Walk2Scan) are
    /// exact algorithms, so they must equal their per-source references
    /// bit for bit, through both the direct and the engine entry points,
    /// at every thread count.
    #[test]
    fn sp_lp_batched_equal_per_source_bit_identical((n, edges) in arb_graph()) {
        let snap = Snapshot::from_edges(n, &edges);
        let pairs = candidate_pairs(&snap);
        prop_assume!(!pairs.is_empty());

        let sp = ShortestPath::default();
        let sp_ref = sp.score_pairs_per_source(&snap, &pairs);
        prop_assert_eq!(&sp.score_pairs(&snap, &pairs), &sp_ref, "SP batched != per-source");

        let lp = LocalPath::default();
        let lp_ref = lp.score_pairs_per_source(&snap, &pairs);
        prop_assert_eq!(&lp.score_pairs(&snap, &pairs), &lp_ref, "LP batched != per-source");

        for threads in THREADS {
            let sp_t = exec::score_pairs_t(&sp, &snap, &pairs, threads);
            prop_assert_eq!(&sp_t, &sp_ref, "SP engine diverged at {} threads", threads);
            let lp_t = exec::score_pairs_t(&lp, &snap, &pairs, threads);
            prop_assert_eq!(&lp_t, &lp_ref, "LP engine diverged at {} threads", threads);
        }
    }

    /// LRW: with pruning disabled both paths compute the exact truncated
    /// walk distribution and differ only by summation order, so they must
    /// agree to reassociation noise at every thread count.
    #[test]
    fn lrw_batched_equals_per_source((n, edges) in arb_graph()) {
        let snap = Snapshot::from_edges(n, &edges);
        let pairs = candidate_pairs(&snap);
        prop_assume!(!pairs.is_empty());
        let lrw = LocalRandomWalk { steps: 3, prune: 0.0 };
        let reference = lrw.score_pairs_per_source_t(&snap, &pairs, 1);
        for threads in THREADS {
            let batched = lrw.score_pairs_t(&snap, &pairs, threads);
            for i in 0..pairs.len() {
                prop_assert!(
                    (batched[i] - reference[i]).abs() <= 1e-9,
                    "LRW pair {:?} diverged at {} threads: {} vs {}",
                    pairs[i], threads, batched[i], reference[i]
                );
            }
        }
    }

    /// PPR: the Chebyshev solve certifies `‖p - p̂‖₁ ≤ tol/α` and the
    /// forward-push reference has per-entry error ≤ ε·deg, so each pair's
    /// combined score may differ by at most
    /// `ε·(deg u + deg v) + 2·tol/α` — at every thread count.
    #[test]
    fn ppr_batched_within_bound_of_per_source((n, edges) in arb_graph()) {
        let snap = Snapshot::from_edges(n, &edges);
        let pairs = candidate_pairs(&snap);
        prop_assume!(!pairs.is_empty());
        let ppr = PersonalizedPageRank::default();
        let reference = ppr.score_pairs_per_source_t(&snap, &pairs, 1);
        for threads in THREADS {
            let batched = ppr.score_pairs_t(&snap, &pairs, threads);
            for (i, &(u, v)) in pairs.iter().enumerate() {
                let bound = ppr.epsilon * (snap.degree(u) + snap.degree(v)) as f64
                    + 2.0 * ppr.solver_tol() / ppr.alpha;
                prop_assert!(
                    (batched[i] - reference[i]).abs() <= bound,
                    "PPR pair {:?} out of bound at {} threads: {} vs {} (bound {})",
                    pairs[i], threads, batched[i], reference[i], bound
                );
            }
        }
    }

    /// Katz-sc: the batched SpMM landmark build folds each row in the same
    /// ascending-neighbor order as the per-landmark SpMV loop, so the full
    /// prepare → score pipeline must be bit-identical to the per-source
    /// oracle at every thread count.
    #[test]
    fn katz_sc_batched_equals_per_source((n, edges) in arb_graph()) {
        let snap = Snapshot::from_edges(n, &edges);
        let pairs = candidate_pairs(&snap);
        prop_assume!(!pairs.is_empty());
        let katz = KatzSc::default();
        let reference = katz.prepare_per_source(&snap).score_chunk(&snap, &pairs);
        prop_assert_eq!(
            &katz.score_pairs(&snap, &pairs), &reference,
            "Katz-sc batched != per-source"
        );
        for threads in THREADS {
            let engine = exec::score_pairs_t(&katz, &snap, &pairs, threads);
            prop_assert_eq!(&engine, &reference, "Katz-sc engine diverged at {} threads", threads);
        }
    }

    /// The cached engine entry points (shared TransitionView, adjacency
    /// reuse) are pure plumbing on a fresh cache: for every global metric
    /// and thread count, a fresh sweep cache must reproduce the transient
    /// path bit for bit.
    #[test]
    fn cached_exec_paths_match_uncached((n, edges) in arb_graph()) {
        let snap = Snapshot::from_edges(n, &edges);
        let pairs = candidate_pairs(&snap);
        prop_assume!(!pairs.is_empty());
        for name in ["SP", "LP", "LRW", "PPR", "Katz-lr", "Katz-sc"] {
            let m = osn_metrics::metric_by_name(name).expect("known metric");
            let base = exec::score_pairs_t(m.as_ref(), &snap, &pairs, 1);
            for threads in THREADS {
                let mut cache = SolverCache::sweep();
                let cached =
                    exec::score_pairs_cached_t(m.as_ref(), &snap, &pairs, threads, &mut cache);
                prop_assert_eq!(
                    &cached, &base,
                    "{} cached path diverged at {} threads", name, threads
                );
            }
        }
    }

    /// Warm starts across a randomized monotone snapshot sweep: scoring
    /// the same pairs on each snapshot with one persistent cache must (a)
    /// actually warm-start from the second snapshot on, (b) spend no more
    /// iterations than the cold path, and (c) agree with independent
    /// cold-start solves within `4·tol/α` per pair (each solve certifies
    /// `‖p - p̂‖₁ ≤ tol/α`; a pair combines two solves from each side).
    #[test]
    fn warm_start_matches_cold_start_across_sweep((n, snapshots) in arb_sweep()) {
        prop_assume!(snapshots.len() >= 2);
        let ppr = PersonalizedPageRank::default();
        let first = Snapshot::from_edges(n, &snapshots[0]);
        let pairs = candidate_pairs(&first);
        prop_assume!(!pairs.is_empty());

        let mut warm_cache = SolverCache::sweep();
        let mut cold_iters = 0u64;
        for edges in &snapshots {
            let snap = Snapshot::from_edges(n, edges);
            let warm = exec::score_pairs_cached_t(&ppr, &snap, &pairs, 2, &mut warm_cache);
            let mut cold_cache = SolverCache::transient();
            let cold = exec::score_pairs_cached_t(&ppr, &snap, &pairs, 2, &mut cold_cache);
            cold_iters += cold_cache.stats.ppr_iterations;
            let bound = 4.0 * ppr.solver_tol() / ppr.alpha;
            for i in 0..pairs.len() {
                prop_assert!(
                    (warm[i] - cold[i]).abs() <= bound,
                    "warm/cold diverged on pair {:?}: {} vs {} (bound {})",
                    pairs[i], warm[i], cold[i], bound
                );
            }
        }
        prop_assert!(
            warm_cache.stats.ppr_warm_starts > 0,
            "persistent cache never warm-started across {} snapshots",
            snapshots.len()
        );
        prop_assert!(
            warm_cache.stats.ppr_iterations <= cold_iters,
            "warm sweep spent more iterations ({}) than cold ({})",
            warm_cache.stats.ppr_iterations, cold_iters
        );
    }
}
