//! Determinism properties of the parallel scoring engine: for every
//! metric, every candidate-enumeration path, and every worker count, the
//! engine must produce *bit-identical* predictions — the same pairs in the
//! same order — as the serial execution. This is the engine's core
//! contract (DESIGN.md, "parallel execution model") and what lets bench
//! runs at different `--threads` settings be compared directly.

use osn_graph::snapshot::Snapshot;
use osn_graph::{traversal, NodeId};
use osn_metrics::candidates::CandidateSet;
use osn_metrics::exec;
use osn_metrics::topk::{top_k_pairs, TopKAcc};
use osn_metrics::traits::CandidatePolicy;
use proptest::prelude::*;

/// Random graphs big enough to give multi-source candidate sets but small
/// enough that all 15 metrics (including the RESCAL/Katz fits) stay fast.
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (8usize..=20).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32)
            .prop_filter("no loop", |(a, b)| a != b)
            .prop_map(|(a, b)| osn_graph::canonical(a, b));
        proptest::collection::vec(edge, 4..40).prop_map(move |mut e| {
            e.sort_unstable();
            e.dedup();
            (n, e)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// predict_top_k with 1 worker == with N workers, for all metrics and
    /// both enumeration-backed candidate policies (TwoHop and Global,
    /// which routes through `pairs_within` + the hub merge).
    #[test]
    fn predictions_are_thread_count_invariant((n, edges) in arb_graph()) {
        let snap = Snapshot::from_edges(n, &edges);
        for policy in [CandidatePolicy::TwoHop, CandidatePolicy::Global] {
            let cands = CandidateSet::build(&snap, policy, 3);
            prop_assume!(!cands.is_empty());
            let k = (cands.len() / 2).max(1);
            for m in osn_metrics::all_metrics() {
                let serial = exec::predict_top_k_t(m.as_ref(), &snap, &cands, k, 0x5EED, 1);
                for threads in [2usize, 4, 8] {
                    let par = exec::predict_top_k_t(m.as_ref(), &snap, &cands, k, 0x5EED, threads);
                    prop_assert_eq!(
                        &serial, &par,
                        "{} with {} threads diverged ({:?} policy)", m.name(), threads, policy
                    );
                }
            }
        }
    }

    /// Candidate enumeration itself is worker-count invariant: the merged
    /// per-source partitions equal the serial scan, in order.
    #[test]
    fn enumeration_is_thread_count_invariant((n, edges) in arb_graph()) {
        let snap = Snapshot::from_edges(n, &edges);
        let two_serial = traversal::two_hop_pairs_t(&snap, 1);
        let within_serial = traversal::pairs_within_t(&snap, 3, 1);
        for threads in [2usize, 3, 5, 8] {
            prop_assert_eq!(&two_serial, &traversal::two_hop_pairs_t(&snap, threads));
            prop_assert_eq!(&within_serial, &traversal::pairs_within_t(&snap, 3, threads));
        }
    }

    /// Chunked top-k (per-chunk heaps with global indices, merged) selects
    /// exactly the pairs — and the order — of the one-pass serial
    /// selection, for arbitrary score vectors and chunk layouts.
    #[test]
    fn chunked_topk_merge_equals_serial(
        scores in proptest::collection::vec(0u32..6, 20..200),
        k in 1usize..25,
        parts in 1usize..7,
        seed in 0u64..1000,
    ) {
        // Many duplicate scores on purpose: ties exercise the
        // jitter-then-index arm of the total order.
        let scores: Vec<f64> = scores.into_iter().map(f64::from).collect();
        let pairs: Vec<(NodeId, NodeId)> =
            (0..scores.len() as u32).map(|i| (i, i + 1)).collect();

        let serial = top_k_pairs(&pairs, &scores, k, seed);

        let mut accs = Vec::new();
        let chunk = scores.len().div_ceil(parts);
        for start in (0..scores.len()).step_by(chunk) {
            let end = (start + chunk).min(scores.len());
            let mut acc = TopKAcc::new(k, seed);
            for i in start..end {
                acc.push(pairs[i], scores[i], i);
            }
            accs.push(acc);
        }
        // Merge in reverse so ordering never leans on chunk arrival order.
        let mut merged = accs.pop().expect("at least one chunk");
        while let Some(acc) = accs.pop() {
            merged.merge(acc);
        }
        prop_assert_eq!(serial, merged.finish());
    }
}
