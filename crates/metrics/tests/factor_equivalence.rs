//! Blocked-vs-dense equivalence for the ALS factorization core: the
//! blocked fit (CSR `spmm_into_t` products, sparse residual
//! certification) must reproduce the retained serial dense reference
//! **bit for bit** at every thread count — the per-row CSR fold is
//! arithmetic-identical to `matmul_dense`, so no tolerance is needed —
//! and certified warm-started sweeps must agree with cold starts on
//! certification outcome across randomized monotone snapshot sequences.
//! Singular systems must surface as structured errors, never silent
//! stale-factor fits.

use osn_graph::snapshot::Snapshot;
use osn_graph::NodeId;
use osn_metrics::candidates::CandidateSet;
use osn_metrics::exec;
use osn_metrics::rescal::Rescal;
use osn_metrics::solver::{SolverCache, SolverError};
use osn_metrics::traits::{CandidatePolicy, Metric};
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Random graphs in the global_equivalence size band. Small graphs stay
/// under the kernel's parallel-row threshold (the serial fallback), so
/// the large-fixture test below covers the genuinely threaded path.
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (8usize..=24).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32)
            .prop_filter("no loop", |(a, b)| a != b)
            .prop_map(|(a, b)| osn_graph::canonical(a, b));
        proptest::collection::vec(edge, 4..50).prop_map(move |mut e| {
            e.sort_unstable();
            e.dedup();
            (n, e)
        })
    })
}

/// A monotone snapshot sweep: a base edge set plus 2 growth batches, each
/// adding at least one new edge (distinct `(nodes, edges)` cache keys).
fn arb_sweep() -> impl Strategy<Value = (usize, Vec<Vec<(NodeId, NodeId)>>)> {
    fn edge(n: usize) -> impl Strategy<Value = (NodeId, NodeId)> {
        (0..n as u32, 0..n as u32)
            .prop_filter("no loop", |(a, b)| a != b)
            .prop_map(|(a, b)| osn_graph::canonical(a, b))
    }
    (10usize..=20).prop_flat_map(|n| {
        (
            proptest::collection::vec(edge(n), 6..30),
            proptest::collection::vec(proptest::collection::vec(edge(n), 1..8), 2..=2),
        )
            .prop_map(move |(base, extras)| {
                let mut snapshots = Vec::new();
                let mut acc = base;
                acc.sort_unstable();
                acc.dedup();
                snapshots.push(acc.clone());
                for batch in extras {
                    acc.extend(batch);
                    acc.sort_unstable();
                    acc.dedup();
                    if acc.len() > snapshots.last().unwrap().len() {
                        snapshots.push(acc.clone());
                    }
                }
                (n, snapshots)
            })
    })
}

fn candidate_pairs(snap: &Snapshot) -> Vec<(NodeId, NodeId)> {
    CandidateSet::build(snap, CandidatePolicy::ThreeHop, 0).pairs().to_vec()
}

/// A deterministic graph large enough to cross the CSR kernel's
/// parallel-row threshold (256 rows) and the residual reduction's
/// 1024-row chunking, so the blocked fit genuinely runs multi-block.
fn big_ring_with_chords() -> Snapshot {
    let n = 1500usize;
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i as NodeId, ((i + 1) % n) as NodeId));
        if i % 3 == 0 {
            edges.push((i as NodeId, ((i + n / 2) % n) as NodeId));
        }
        if i % 97 == 0 && i != 0 {
            // A few hubs so the factorization has supernode structure.
            edges.push((0, i as NodeId));
        }
    }
    Snapshot::from_edges(n, &edges)
}

#[test]
fn blocked_fit_bit_identical_above_parallel_threshold() {
    let snap = big_ring_with_chords();
    let rescal = Rescal { iterations: 8, ..Default::default() };
    let dense = rescal.fit_dense_reference(&snap).expect("dense reference fit");
    for threads in THREADS {
        let blocked = rescal.fit_t(&snap, threads).expect("blocked fit");
        assert_eq!(
            dense.x.max_abs_diff(&blocked.x),
            0.0,
            "X diverged from dense reference at {threads} threads"
        );
        assert_eq!(
            dense.r.max_abs_diff(&blocked.r),
            0.0,
            "R diverged from dense reference at {threads} threads"
        );
        assert_eq!(dense.residual, blocked.residual);
    }
}

#[test]
fn singular_system_recovery_is_deterministic() {
    // Rank-deficient snapshot: one edge among four nodes at rank 3 with
    // no ridge. The first X update collapses the embedding to rank ≤ 1,
    // so the unregularized R normal equations are singular. This used to
    // be a silent `solve_many == None` skip; now both fit paths must
    // return the same structured error, deterministically.
    let snap = Snapshot::from_edges(4, &[(0, 1)]);
    let bad = Rescal { rank: 3, iterations: 5, lambda: 0.0, ..Default::default() };
    let blocked = bad.fit(&snap).expect_err("blocked fit must surface the singular system");
    let dense =
        bad.fit_dense_reference(&snap).expect_err("dense fit must surface the singular system");
    assert_eq!(blocked, dense, "both paths must report the identical structured error");
    assert!(matches!(blocked, SolverError::Singular { metric: "Rescal", .. }), "got {blocked:?}");
    // Recovery: the same system with any positive ridge fits cleanly and
    // both paths still agree bit for bit.
    let good = Rescal { lambda: 0.01, ..bad };
    let b = good.fit(&snap).expect("regularized blocked fit");
    let d = good.fit_dense_reference(&snap).expect("regularized dense fit");
    assert_eq!(b.x.max_abs_diff(&d.x), 0.0);
    assert_eq!(b.r.max_abs_diff(&d.r), 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The blocked ALS fit must equal the serial dense reference bit for
    /// bit — factors and certified residual — at every thread count, in
    /// both fixed-sweep and certified early-stop mode.
    #[test]
    fn blocked_fit_equals_dense_reference_bit_identical((n, edges) in arb_graph()) {
        let snap = Snapshot::from_edges(n, &edges);
        let fixed = Rescal::default();
        let certified = Rescal { iterations: 500, tol: 1e-6, ..Default::default() };
        for rescal in [&fixed, &certified] {
            let dense = rescal.fit_dense_reference(&snap).expect("dense reference fit");
            for threads in THREADS {
                let blocked = rescal.fit_t(&snap, threads).expect("blocked fit");
                prop_assert_eq!(
                    dense.x.max_abs_diff(&blocked.x), 0.0,
                    "X diverged (tol={}) at {} threads", rescal.tol, threads
                );
                prop_assert_eq!(
                    dense.r.max_abs_diff(&blocked.r), 0.0,
                    "R diverged (tol={}) at {} threads", rescal.tol, threads
                );
                prop_assert_eq!(dense.residual, blocked.residual);
                prop_assert_eq!(dense.iterations, blocked.iterations);
            }
        }
    }

    /// The engine entry points (whole-batch dispatch, transient or fresh
    /// sweep cache) are pure plumbing around the same fit: every path
    /// must reproduce the direct scoring bit for bit at every thread
    /// count, and a persistent cache must fit exactly once per snapshot.
    #[test]
    fn engine_paths_match_direct_scoring((n, edges) in arb_graph()) {
        let snap = Snapshot::from_edges(n, &edges);
        let pairs = candidate_pairs(&snap);
        prop_assume!(!pairs.is_empty());
        let rescal = Rescal::default();
        let base = rescal.score_pairs(&snap, &pairs);
        for threads in THREADS {
            let engine = exec::score_pairs_t(&rescal, &snap, &pairs, threads);
            prop_assert_eq!(&engine, &base, "engine diverged at {} threads", threads);
            let mut cache = SolverCache::sweep();
            let cached = exec::score_pairs_cached_t(&rescal, &snap, &pairs, threads, &mut cache);
            prop_assert_eq!(&cached, &base, "cached path diverged at {} threads", threads);
            prop_assert_eq!(cache.stats.rescal_fits, 1);
            // Re-scoring the same snapshot must reuse the registered
            // model: no second fit, bit-identical scores.
            let again = exec::score_pairs_cached_t(&rescal, &snap, &pairs, threads, &mut cache);
            prop_assert_eq!(&again, &base, "model reuse diverged at {} threads", threads);
            prop_assert_eq!(cache.stats.rescal_fits, 1, "cached model was refit");
        }
    }

    /// Certified warm starts across a randomized monotone snapshot
    /// sweep: with one persistent cache the fit must (a) actually
    /// warm-start from the second snapshot on, and (b) certify a
    /// residual in the same plateau band as an independent cold fit.
    /// Warm-starting changes the ALS trajectory, so neither factors nor
    /// sweep counts are pinned — on adversarial random growth a warm
    /// start can even take *longer* to re-plateau than a cold one — but
    /// the residual certification must agree. Iteration savings on
    /// realistic growth traces are measured by scalecheck, not asserted
    /// here.
    #[test]
    fn certified_warm_starts_match_cold_across_sweep((n, snapshots) in arb_sweep()) {
        prop_assume!(snapshots.len() >= 2);
        let rescal = Rescal { iterations: 500, tol: 1e-6, ..Default::default() };
        let first = Snapshot::from_edges(n, &snapshots[0]);
        let pairs = candidate_pairs(&first);
        prop_assume!(!pairs.is_empty());

        let mut warm_cache = SolverCache::sweep();
        let mut cold_iters = 0u64;
        let mut prev_cold = None;
        for edges in &snapshots {
            let snap = Snapshot::from_edges(n, edges);
            let warm = exec::score_pairs_cached_t(&rescal, &snap, &pairs, 2, &mut warm_cache);
            prop_assert!(warm.iter().all(|s| s.is_finite()));
            let cold = rescal.fit_t(&snap, 2).expect("cold fit");
            cold_iters += cold.iterations as u64;
            // Both paths certified a plateau on the same snapshot; their
            // residuals must sit in the same band (factor 2 is generous —
            // ALS from different starts can land on different local
            // plateaus, but not wildly different ones on these graphs).
            if let Some(prev) = &prev_cold {
                let seeded: &osn_metrics::rescal::RescalModel = prev;
                let wm = rescal
                    .fit_warm_t(&snap, Some((&seeded.x, &seeded.r)), 2)
                    .expect("warm fit");
                prop_assert!(wm.warm_started);
                prop_assert!(
                    wm.residual <= cold.residual * 2.0 + 1e-9
                        && cold.residual <= wm.residual * 2.0 + 1e-9,
                    "warm/cold certified residuals diverged: {} vs {}",
                    wm.residual, cold.residual
                );
            }
            prev_cold = Some(cold);
        }
        prop_assert!(
            warm_cache.stats.rescal_warm_starts > 0,
            "persistent cache never warm-started across {} snapshots",
            snapshots.len()
        );
        prop_assert!(warm_cache.stats.rescal_iterations > 0);
        prop_assert!(cold_iters > 0);
    }
}
