//! Random-walk metrics: Local Random Walk (LRW) and Personalized PageRank
//! (PPR).
//!
//! Production scoring runs on the batched multi-source solver engine in
//! [`crate::solver`] (one CSR sweep advances a block of source columns per
//! step); the original per-source frontier walk and forward-push
//! implementations are retained as reference oracles
//! ([`LocalRandomWalk::score_pairs_per_source_t`],
//! [`PersonalizedPageRank::score_pairs_per_source_t`]) and the equivalence
//! tests in `tests/global_equivalence.rs` pin the two paths together.

use crate::exec::ExecMode;
use crate::solver::{self, SolverCache};
use crate::traits::{CandidatePolicy, Metric, ScoreContract};
use osn_graph::par;
use osn_graph::snapshot::Snapshot;
use osn_graph::NodeId;

/// Local Random Walk \[25\]:
/// `deg(u)/2|E| · π_uv(m) + deg(v)/2|E| · π_vu(m)`,
/// where `π_uv(m)` is the probability of an `m`-step walk from `u` ending
/// at `v`. The paper uses small `m`; we default to `m = 3`.
///
/// Walk distributions are computed by explicit probability propagation
/// with a prune threshold: probability mass below `prune` is dropped (and
/// with it the exponential blow-up around supernodes). `prune = 0`
/// recovers the exact distribution.
#[derive(Clone, Debug)]
pub struct LocalRandomWalk {
    /// Number of walk steps `m`.
    pub steps: usize,
    /// Probability mass below which a frontier entry is not propagated.
    pub prune: f64,
}

impl Default for LocalRandomWalk {
    fn default() -> Self {
        LocalRandomWalk { steps: 3, prune: 1e-7 }
    }
}

/// Reusable per-source scratch space shared across a batch.
struct Scratch {
    /// Main value buffer (walk probability / PPR estimate).
    buf: Vec<f64>,
    /// Indices of `buf` that may be non-zero (cleared between sources).
    touched: Vec<NodeId>,
    /// Membership bitmap for `touched`.
    seen: Vec<bool>,
    /// Secondary buffer (PPR residuals), cleared via `touched2`.
    buf2: Vec<f64>,
    touched2: Vec<NodeId>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            buf: vec![0.0; n],
            touched: Vec::new(),
            seen: vec![false; n],
            buf2: vec![0.0; n],
            touched2: Vec::new(),
        }
    }

    #[inline]
    fn touch(&mut self, x: NodeId) {
        if !self.seen[x as usize] {
            self.seen[x as usize] = true;
            self.touched.push(x);
        }
    }

    fn clear(&mut self) {
        for &x in &self.touched {
            self.buf[x as usize] = 0.0;
            self.seen[x as usize] = false;
        }
        self.touched.clear();
        for &x in &self.touched2 {
            self.buf2[x as usize] = 0.0;
        }
        self.touched2.clear();
    }
}

/// Propagates a unit of probability `steps` times from `src` through the
/// degree-normalized adjacency into `scratch.buf`.
fn walk_distribution(snap: &Snapshot, src: NodeId, steps: usize, prune: f64, scr: &mut Scratch) {
    scr.buf[src as usize] = 1.0;
    scr.touch(src);
    let mut frontier: Vec<(NodeId, f64)> = vec![(src, 1.0)];
    for _ in 0..steps {
        // Drain the frontier's mass, then scatter it to neighbors.
        for &(x, _) in &frontier {
            scr.buf[x as usize] = 0.0;
        }
        let mut next: Vec<NodeId> = Vec::new();
        for &(x, p) in &frontier {
            let d = snap.degree(x);
            if d == 0 {
                // Dangling mass is self-absorbing.
                if scr.buf[x as usize] == 0.0 {
                    next.push(x);
                }
                scr.touch(x);
                scr.buf[x as usize] += p;
                continue;
            }
            let share = p / d as f64;
            if share < prune {
                continue;
            }
            for &y in snap.neighbors(x) {
                if scr.buf[y as usize] == 0.0 {
                    next.push(y);
                }
                scr.touch(y);
                scr.buf[y as usize] += share;
            }
        }
        frontier = next.into_iter().map(|x| (x, scr.buf[x as usize])).collect();
    }
}

/// Shared two-pass batch scorer: `combine(π_uv, π_vu)` per pair, where each
/// directional probability comes from one walk/push per distinct source.
///
/// Sources are independent, so each per-source group is one work item on
/// the shared pool; every worker reuses a single [`Scratch`] allocation
/// across all the groups it claims. Each group's values are scattered back
/// by pair index and are pure functions of `(snapshot, source)`, so the
/// output is bit-identical for every `threads` value.
fn two_pass_scores<F, G>(
    snap: &Snapshot,
    pairs: &[(NodeId, NodeId)],
    run: F,
    combine: G,
    threads: usize,
) -> Vec<f64>
where
    F: Fn(&Snapshot, NodeId, &mut Scratch) + Sync,
    G: Fn(&Snapshot, (NodeId, NodeId), f64, f64) -> f64,
{
    let n = snap.node_count();
    let mut p_uv = vec![0.0; pairs.len()];
    let mut p_vu = vec![0.0; pairs.len()];

    for endpoint in 0..2 {
        let src_of = |p: (NodeId, NodeId)| if endpoint == 0 { p.0 } else { p.1 };
        let dst_of = |p: (NodeId, NodeId)| if endpoint == 0 { p.1 } else { p.0 };
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.sort_unstable_by_key(|&i| src_of(pairs[i]));
        // One task per distinct source.
        let mut groups: Vec<std::ops::Range<usize>> = Vec::new();
        let mut i = 0;
        while i < order.len() {
            let src = src_of(pairs[order[i]]);
            let mut j = i;
            while j < order.len() && src_of(pairs[order[j]]) == src {
                j += 1;
            }
            groups.push(i..j);
            i = j;
        }
        let results = par::run_indexed_init(
            groups.len(),
            threads.max(1),
            || Scratch::new(n),
            |scr, g| {
                let range = groups[g].clone();
                let src = src_of(pairs[order[range.start]]);
                run(snap, src, scr);
                let vals: Vec<(usize, f64)> = order[range]
                    .iter()
                    .map(|&idx| (idx, scr.buf[dst_of(pairs[idx]) as usize]))
                    .collect();
                scr.clear();
                vals
            },
        );
        let target = if endpoint == 0 { &mut p_uv } else { &mut p_vu };
        for (idx, val) in results.into_iter().flatten() {
            target[idx] = val;
        }
    }
    pairs.iter().enumerate().map(|(i, &p)| combine(snap, p, p_uv[i], p_vu[i])).collect()
}

impl Metric for LocalRandomWalk {
    fn name(&self) -> &'static str {
        "LRW"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::ThreeHop
    }

    fn score_contract(&self) -> ScoreContract {
        ScoreContract::FiniteNonNegative
    }

    fn exec_mode(&self) -> ExecMode {
        ExecMode::WholeBatch
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        self.score_pairs_t(snap, pairs, par::max_threads())
    }

    fn score_pairs_t(
        &self,
        snap: &Snapshot,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Vec<f64> {
        let mut cache = SolverCache::transient();
        self.score_pairs_cached(snap, pairs, threads, &mut cache)
    }

    fn score_pairs_cached(
        &self,
        snap: &Snapshot,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
        cache: &mut SolverCache,
    ) -> Vec<f64> {
        cache.ensure_snapshot(snap);
        // linklens-allow(unwrap-in-lib): ensure_snapshot always installs a transition view
        let tv = cache.transition().expect("ensure_snapshot installed a view");
        match solver::lrw_scores_t(&tv, pairs, self.steps, self.prune, threads, "LRW") {
            Ok(scores) => scores,
            // The Metric trait has no error channel; a tripped solver guard
            // is a hard invariant violation, same class as an audit panic.
            Err(e) => panic!("{e}"),
        }
    }
}

impl LocalRandomWalk {
    /// Per-source reference path (the original frontier-propagation
    /// implementation): one [`walk_distribution`] per distinct endpoint.
    /// Kept as the oracle the batched solver is tested and benchmarked
    /// against; not used by the engine.
    pub fn score_pairs_per_source_t(
        &self,
        snap: &Snapshot,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Vec<f64> {
        let two_e = (2 * snap.edge_count()).max(1) as f64;
        // linklens-allow(per-source-power-iteration): reference oracle; the engine solves LRW batched
        two_pass_scores(
            snap,
            pairs,
            // linklens-allow(per-source-power-iteration): reference oracle, one walk per source on purpose
            |s, src, scr| walk_distribution(s, src, self.steps, self.prune, scr),
            |s, (u, v), puv, pvu| {
                (s.degree(u) as f64 / two_e) * puv + (s.degree(v) as f64 / two_e) * pvu
            },
            threads,
        )
    }
}

/// Personalized PageRank \[5\]: `π_uv + π_vu` with restart probability
/// `α = 0.15`, approximated by the forward-push algorithm
/// (Andersen–Chung–Lang): push while any residual exceeds
/// `epsilon · deg`, giving per-entry error ≤ `epsilon · deg`.
#[derive(Clone, Debug)]
pub struct PersonalizedPageRank {
    /// Restart probability α.
    pub alpha: f64,
    /// Push tolerance (smaller = more accurate, slower).
    pub epsilon: f64,
}

impl Default for PersonalizedPageRank {
    fn default() -> Self {
        PersonalizedPageRank { alpha: 0.15, epsilon: 1e-5 }
    }
}

fn forward_push(snap: &Snapshot, src: NodeId, alpha: f64, epsilon: f64, scr: &mut Scratch) {
    // buf = PPR estimate, buf2 = residual.
    scr.buf2[src as usize] = 1.0;
    scr.touched2.push(src);
    let mut queue: Vec<NodeId> = vec![src];
    while let Some(x) = queue.pop() {
        let d = snap.degree(x).max(1);
        let r = scr.buf2[x as usize];
        if r < epsilon * d as f64 {
            continue;
        }
        scr.buf2[x as usize] = 0.0;
        scr.touch(x);
        scr.buf[x as usize] += alpha * r;
        let share = (1.0 - alpha) * r / d as f64;
        for &y in snap.neighbors(x) {
            let dy = snap.degree(y).max(1);
            let before = scr.buf2[y as usize];
            if before == 0.0 {
                scr.touched2.push(y);
            }
            scr.buf2[y as usize] += share;
            if before < epsilon * dy as f64 && scr.buf2[y as usize] >= epsilon * dy as f64 {
                queue.push(y);
            }
        }
    }
}

impl Metric for PersonalizedPageRank {
    fn name(&self) -> &'static str {
        "PPR"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::ThreeHop
    }

    fn score_contract(&self) -> ScoreContract {
        ScoreContract::FiniteNonNegative
    }

    fn exec_mode(&self) -> ExecMode {
        ExecMode::WholeBatch
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        self.score_pairs_t(snap, pairs, par::max_threads())
    }

    fn score_pairs_t(
        &self,
        snap: &Snapshot,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Vec<f64> {
        let mut cache = SolverCache::transient();
        self.score_pairs_cached(snap, pairs, threads, &mut cache)
    }

    fn score_pairs_cached(
        &self,
        snap: &Snapshot,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
        cache: &mut SolverCache,
    ) -> Vec<f64> {
        cache.ensure_snapshot(snap);
        // linklens-allow(unwrap-in-lib): ensure_snapshot always installs a transition view
        let tv = cache.transition().expect("ensure_snapshot installed a view");
        match solver::ppr_scores_t(&tv, pairs, self.alpha, self.solver_tol(), threads, cache, "PPR")
        {
            Ok(scores) => scores,
            // The Metric trait has no error channel; a tripped solver guard
            // is a hard invariant violation, same class as an audit panic.
            Err(e) => panic!("{e}"),
        }
    }
}

impl PersonalizedPageRank {
    /// Residual L1 tolerance the batched Chebyshev solver targets,
    /// derived from the push tolerance so the solver path is at least as
    /// accurate as the per-source reference (push guarantees per-entry
    /// error ≤ `epsilon · deg`; the solver certifies total L1 error
    /// ≤ `solver_tol / alpha`).
    pub fn solver_tol(&self) -> f64 {
        10.0 * self.epsilon
    }

    /// Per-source reference path (the original Andersen–Chung–Lang
    /// forward-push implementation): one [`forward_push`] per distinct
    /// endpoint. Kept as the oracle the batched solver is tested and
    /// benchmarked against; not used by the engine.
    pub fn score_pairs_per_source_t(
        &self,
        snap: &Snapshot,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Vec<f64> {
        // linklens-allow(per-source-power-iteration): reference oracle; the engine solves PPR batched
        two_pass_scores(
            snap,
            pairs,
            // linklens-allow(per-source-power-iteration): reference oracle, one push per source on purpose
            |s, src, scr| forward_push(s, src, self.alpha, self.epsilon, scr),
            |_, _, puv, pvu| puv + pvu,
            threads,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Snapshot {
        Snapshot::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn walk_distribution_path_graph_exact() {
        // From node 0 on 0-1-2-3, after 2 steps: 0 w.p. 1/2, 2 w.p. 1/2.
        let s = path4();
        let mut scr = Scratch::new(4);
        walk_distribution(&s, 0, 2, 0.0, &mut scr);
        assert!((scr.buf[0] - 0.5).abs() < 1e-12);
        assert!((scr.buf[2] - 0.5).abs() < 1e-12);
        assert_eq!(scr.buf[1], 0.0);
    }

    #[test]
    fn walk_distribution_mass_conserved() {
        let s = Snapshot::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let mut scr = Scratch::new(5);
        walk_distribution(&s, 0, 3, 0.0, &mut scr);
        let total: f64 = scr.buf.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "mass leaked: {total}");
    }

    #[test]
    fn scratch_clear_resets_everything() {
        let s = path4();
        let mut scr = Scratch::new(4);
        walk_distribution(&s, 0, 3, 0.0, &mut scr);
        scr.clear();
        assert!(scr.buf.iter().all(|&x| x == 0.0));
        assert!(scr.seen.iter().all(|&x| !x));
        // Second run from a different source must be unaffected.
        walk_distribution(&s, 3, 2, 0.0, &mut scr);
        assert!((scr.buf[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lrw_respects_walk_parity_on_bipartite_graphs() {
        // On the bipartite path 0-1-2-3, a 3-step walk can never land at
        // even distance: π_{02}(3) = 0 exactly, while the distance-3 pair
        // gets positive mass. This is faithful to the paper's formula.
        let s = path4();
        let lrw = LocalRandomWalk::default();
        let scores = lrw.score_pairs(&s, &[(0, 2), (0, 3)]);
        assert_eq!(scores[0], 0.0, "even-distance pair unreachable in 3 steps");
        assert!(scores[1] > 0.0, "3-step walk reaches distance 3");
    }

    #[test]
    fn lrw_prefers_near_pairs_on_non_bipartite_graph() {
        // Two triangles bridged (odd cycles break parity): 0-1-2 and 3-4-5
        // triangles joined by edge 2-3.
        let s = Snapshot::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        let lrw = LocalRandomWalk::default();
        let scores = lrw.score_pairs(&s, &[(0, 3), (0, 4)]);
        assert!(scores[0] > scores[1], "distance-2 pair should beat distance-3: {scores:?}");
        assert!(scores[1] > 0.0);
    }

    #[test]
    fn lrw_symmetric_in_pair_order() {
        let s = Snapshot::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let lrw = LocalRandomWalk::default();
        let a = lrw.score_pairs(&s, &[(0, 3)])[0];
        let b = lrw.score_pairs(&s, &[(3, 0)])[0];
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn ppr_push_approximates_power_iteration() {
        // Reference: dense personalized-PageRank power iteration.
        let s = Snapshot::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let alpha = 0.15;
        let n = 5;
        let mut pi = vec![0.0; n];
        let mut next = vec![0.0; n];
        pi[0] = 1.0;
        for _ in 0..200 {
            next.iter_mut().for_each(|x| *x = 0.0);
            next[0] += alpha;
            for x in 0..n as NodeId {
                let d = s.degree(x).max(1) as f64;
                for &y in s.neighbors(x) {
                    next[y as usize] += (1.0 - alpha) * pi[x as usize] / d;
                }
            }
            pi.copy_from_slice(&next);
        }
        let mut scr = Scratch::new(n);
        forward_push(&s, 0, alpha, 1e-7, &mut scr);
        for (v, &exact) in pi.iter().enumerate() {
            assert!(
                (scr.buf[v] - exact).abs() < 1e-4,
                "node {v}: push {} vs exact {exact}",
                scr.buf[v]
            );
        }
    }

    #[test]
    fn ppr_scores_rank_by_proximity() {
        let s = path4();
        let ppr = PersonalizedPageRank::default();
        let scores = ppr.score_pairs(&s, &[(0, 2), (0, 3)]);
        assert!(scores[0] > scores[1]);
        assert!(scores[1] > 0.0);
    }

    #[test]
    fn ppr_handles_isolated_source() {
        let s = Snapshot::from_edges(3, &[(0, 1)]);
        let ppr = PersonalizedPageRank::default();
        let scores = ppr.score_pairs(&s, &[(0, 2)]);
        assert!(scores[0] < 1e-6);
    }

    #[test]
    fn lrw_prune_trades_accuracy_for_speed() {
        // With aggressive pruning, far-away mass disappears but near-by
        // scores survive.
        let s = path4();
        let exact = LocalRandomWalk { steps: 3, prune: 0.0 };
        let pruned = LocalRandomWalk { steps: 3, prune: 0.4 };
        let e = exact.score_pairs(&s, &[(0, 2)])[0];
        let p = pruned.score_pairs(&s, &[(0, 2)])[0];
        assert!(p <= e + 1e-12);
        assert!(p >= 0.0);
    }
}
