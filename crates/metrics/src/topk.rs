//! Top-k pair selection with seeded tie-breaking.
//!
//! The composite key (score, seeded jitter, global index) is a *strict
//! total order* whenever indices are distinct. That is what makes the
//! chunked execution engine's per-chunk [`TopKAcc`] heaps mergeable with
//! bit-identical results: an entry in the global top-k is necessarily in
//! its own chunk's top-k, so merging per-chunk winners loses nothing, and
//! the final sort is unambiguous.

use osn_graph::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the top-k heap: ordered by score, then by a seeded hash (the
/// paper's "random choice among ties", deterministic here), then by index.
#[derive(PartialEq)]
struct Entry {
    score: f64,
    jitter: u64,
    idx: usize,
    pair: (NodeId, NodeId),
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the *worst* on top so
        // it can be evicted (min-heap of the current best k).
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| other.jitter.cmp(&self.jitter))
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn pair_jitter(u: NodeId, v: NodeId, seed: u64) -> u64 {
    let mut z = (u as u64) << 32 | v as u64;
    z ^= seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A streaming top-k accumulator over (pair, score, global index) triples.
///
/// The chunked scoring engine keeps one `TopKAcc` per chunk — fed with
/// *global* pair indices so the tie-break key stays a total order across
/// chunks — then [`merge`](Self::merge)s them. Because each chunk retains
/// its own top-k under the shared total order, the merged result is
/// bit-identical to a single serial pass ([`top_k_pairs`] is itself
/// implemented as one accumulator).
pub struct TopKAcc {
    k: usize,
    seed: u64,
    heap: BinaryHeap<Entry>,
}

impl TopKAcc {
    /// Creates an accumulator selecting the best `k` entries under `seed`'s
    /// tie-breaking.
    pub fn new(k: usize, seed: u64) -> Self {
        TopKAcc { k, seed, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// Offers one candidate. `idx` must be the pair's position in the full
    /// (un-chunked) candidate list so indices stay globally distinct.
    /// NaN scores are skipped.
    pub fn push(&mut self, pair: (NodeId, NodeId), score: f64, idx: usize) {
        if self.k == 0 || score.is_nan() {
            return;
        }
        let jitter = pair_jitter(pair.0, pair.1, self.seed);
        let cand = Entry { score, jitter, idx, pair };
        if self.heap.len() < self.k {
            self.heap.push(cand);
        } else if let Some(worst) = self.heap.peek() {
            // `worst` is the minimum under our reversed ordering; replace
            // it when the candidate ranks strictly higher.
            if cand.cmp(worst) == Ordering::Less {
                self.heap.pop();
                self.heap.push(cand);
            }
        }
    }

    /// Folds another accumulator (same `k`/`seed`) into this one.
    pub fn merge(&mut self, other: TopKAcc) {
        debug_assert_eq!(self.k, other.k);
        debug_assert_eq!(self.seed, other.seed);
        for e in other.heap.into_vec() {
            if self.heap.len() < self.k {
                self.heap.push(e);
            } else if let Some(worst) = self.heap.peek() {
                if e.cmp(worst) == Ordering::Less {
                    self.heap.pop();
                    self.heap.push(e);
                }
            }
        }
    }

    /// The selected pairs, best-first.
    pub fn finish(self) -> Vec<(NodeId, NodeId)> {
        let mut picked: Vec<Entry> = self.heap.into_vec();
        // Under the reversed ordering the best entry is the smallest, so an
        // ascending sort yields best-first output.
        picked.sort_by(Entry::cmp);
        picked.into_iter().map(|e| e.pair).collect()
    }
}

/// Selects the `k` highest-scoring pairs. Ties are broken by a seeded hash
/// of the pair, so equal-score candidates are chosen pseudo-randomly but
/// reproducibly. NaN scores are skipped.
///
/// Runs in O(n log k) with O(k) extra space.
pub fn top_k_pairs(
    pairs: &[(NodeId, NodeId)],
    scores: &[f64],
    k: usize,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    assert_eq!(pairs.len(), scores.len(), "pairs/scores length mismatch");
    let mut acc = TopKAcc::new(k, seed);
    for (idx, (&pair, &score)) in pairs.iter().zip(scores).enumerate() {
        acc.push(pair, score, idx);
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_highest_scores_in_order() {
        let pairs = vec![(0, 1), (0, 2), (0, 3), (0, 4)];
        let scores = vec![1.0, 4.0, 3.0, 2.0];
        let top = top_k_pairs(&pairs, &scores, 2, 0);
        assert_eq!(top, vec![(0, 2), (0, 3)]);
    }

    #[test]
    fn k_larger_than_input_returns_all() {
        let pairs = vec![(0, 1), (2, 3)];
        let scores = vec![1.0, 2.0];
        let top = top_k_pairs(&pairs, &scores, 10, 0);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], (2, 3));
    }

    #[test]
    fn k_zero_is_empty() {
        assert!(top_k_pairs(&[(0, 1)], &[1.0], 0, 0).is_empty());
    }

    #[test]
    fn ties_break_deterministically_per_seed() {
        let pairs: Vec<(u32, u32)> = (0..100).map(|i| (i, i + 1000)).collect();
        let scores = vec![1.0; 100];
        let a = top_k_pairs(&pairs, &scores, 10, 7);
        let b = top_k_pairs(&pairs, &scores, 10, 7);
        assert_eq!(a, b);
        let c = top_k_pairs(&pairs, &scores, 10, 8);
        assert_ne!(a, c, "different seeds should break ties differently");
    }

    #[test]
    fn nan_scores_are_skipped() {
        let pairs = vec![(0, 1), (0, 2), (0, 3)];
        let scores = vec![f64::NAN, 1.0, 2.0];
        let top = top_k_pairs(&pairs, &scores, 3, 0);
        assert_eq!(top, vec![(0, 3), (0, 2)]);
    }

    #[test]
    fn negative_and_infinite_scores_ordered() {
        let pairs = vec![(0, 1), (0, 2), (0, 3)];
        let scores = vec![f64::NEG_INFINITY, -5.0, f64::INFINITY];
        let top = top_k_pairs(&pairs, &scores, 2, 0);
        assert_eq!(top, vec![(0, 3), (0, 2)]);
    }

    #[test]
    fn chunked_merge_matches_serial_selection() {
        // Split the candidate list into uneven chunks, accumulate each with
        // global indices, merge in arbitrary order: identical to one pass.
        let pairs: Vec<(u32, u32)> = (0..97).map(|i| (i, i + 200)).collect();
        let scores: Vec<f64> = (0..97).map(|i| f64::from(i % 7)).collect();
        let k = 11;
        let seed = 5;
        let serial = top_k_pairs(&pairs, &scores, k, seed);
        for bounds in [vec![0, 10, 40, 97], vec![0, 97], vec![0, 1, 2, 50, 96, 97]] {
            let mut accs: Vec<TopKAcc> = bounds
                .windows(2)
                .map(|w| {
                    let mut acc = TopKAcc::new(k, seed);
                    for i in w[0]..w[1] {
                        acc.push(pairs[i], scores[i], i);
                    }
                    acc
                })
                .collect();
            // Merge back-to-front so the order differs from chunk order.
            let mut merged = accs.pop().unwrap();
            while let Some(acc) = accs.pop() {
                merged.merge(acc);
            }
            assert_eq!(merged.finish(), serial, "bounds {bounds:?}");
        }
    }

    #[test]
    fn tie_winners_match_full_sort() {
        // The heap's tie handling must agree with a full sort using the
        // same composite key.
        let pairs: Vec<(u32, u32)> = (0..50).map(|i| (i, i + 100)).collect();
        let scores: Vec<f64> = (0..50).map(|i| f64::from(i % 5)).collect();
        let k = 7;
        let fast = top_k_pairs(&pairs, &scores, k, 3);
        let mut idx: Vec<usize> = (0..50).collect();
        idx.sort_by(|&a, &b| {
            scores[b]
                .total_cmp(&scores[a])
                .then_with(|| {
                    pair_jitter(pairs[b].0, pairs[b].1, 3)
                        .cmp(&pair_jitter(pairs[a].0, pairs[a].1, 3))
                })
                .then_with(|| b.cmp(&a))
        });
        let slow: Vec<(u32, u32)> = idx[..k].iter().map(|&i| pairs[i]).collect();
        assert_eq!(fast, slow);
    }
}
