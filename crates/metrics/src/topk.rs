//! Top-k pair selection with seeded tie-breaking.

use osn_graph::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the top-k heap: ordered by score, then by a seeded hash (the
/// paper's "random choice among ties", deterministic here), then by index.
#[derive(PartialEq)]
struct Entry {
    score: f64,
    jitter: u64,
    idx: usize,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the *worst* on top so
        // it can be evicted (min-heap of the current best k).
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| other.jitter.cmp(&self.jitter))
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn pair_jitter(u: NodeId, v: NodeId, seed: u64) -> u64 {
    let mut z = (u as u64) << 32 | v as u64;
    z ^= seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Selects the `k` highest-scoring pairs. Ties are broken by a seeded hash
/// of the pair, so equal-score candidates are chosen pseudo-randomly but
/// reproducibly. NaN scores are skipped.
///
/// Runs in O(n log k) with O(k) extra space.
pub fn top_k_pairs(
    pairs: &[(NodeId, NodeId)],
    scores: &[f64],
    k: usize,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    assert_eq!(pairs.len(), scores.len(), "pairs/scores length mismatch");
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(k + 1);
    for (idx, (&pair, &score)) in pairs.iter().zip(scores).enumerate() {
        if score.is_nan() {
            continue;
        }
        let jitter = pair_jitter(pair.0, pair.1, seed);
        if heap.len() < k {
            heap.push(Entry { score, jitter, idx });
        } else if let Some(worst) = heap.peek() {
            let cand = Entry { score, jitter, idx };
            // `worst` is the minimum under our reversed ordering; replace
            // it when the candidate ranks strictly higher.
            if cand.cmp(worst) == Ordering::Less {
                heap.pop();
                heap.push(cand);
            }
        }
    }
    let mut picked: Vec<Entry> = heap.into_vec();
    // Under the reversed ordering the best entry is the smallest, so an
    // ascending sort yields best-first output.
    picked.sort_by(Entry::cmp);
    picked.into_iter().map(|e| pairs[e.idx]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_highest_scores_in_order() {
        let pairs = vec![(0, 1), (0, 2), (0, 3), (0, 4)];
        let scores = vec![1.0, 4.0, 3.0, 2.0];
        let top = top_k_pairs(&pairs, &scores, 2, 0);
        assert_eq!(top, vec![(0, 2), (0, 3)]);
    }

    #[test]
    fn k_larger_than_input_returns_all() {
        let pairs = vec![(0, 1), (2, 3)];
        let scores = vec![1.0, 2.0];
        let top = top_k_pairs(&pairs, &scores, 10, 0);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], (2, 3));
    }

    #[test]
    fn k_zero_is_empty() {
        assert!(top_k_pairs(&[(0, 1)], &[1.0], 0, 0).is_empty());
    }

    #[test]
    fn ties_break_deterministically_per_seed() {
        let pairs: Vec<(u32, u32)> = (0..100).map(|i| (i, i + 1000)).collect();
        let scores = vec![1.0; 100];
        let a = top_k_pairs(&pairs, &scores, 10, 7);
        let b = top_k_pairs(&pairs, &scores, 10, 7);
        assert_eq!(a, b);
        let c = top_k_pairs(&pairs, &scores, 10, 8);
        assert_ne!(a, c, "different seeds should break ties differently");
    }

    #[test]
    fn nan_scores_are_skipped() {
        let pairs = vec![(0, 1), (0, 2), (0, 3)];
        let scores = vec![f64::NAN, 1.0, 2.0];
        let top = top_k_pairs(&pairs, &scores, 3, 0);
        assert_eq!(top, vec![(0, 3), (0, 2)]);
    }

    #[test]
    fn negative_and_infinite_scores_ordered() {
        let pairs = vec![(0, 1), (0, 2), (0, 3)];
        let scores = vec![f64::NEG_INFINITY, -5.0, f64::INFINITY];
        let top = top_k_pairs(&pairs, &scores, 2, 0);
        assert_eq!(top, vec![(0, 3), (0, 2)]);
    }

    #[test]
    fn tie_winners_match_full_sort() {
        // The heap's tie handling must agree with a full sort using the
        // same composite key.
        let pairs: Vec<(u32, u32)> = (0..50).map(|i| (i, i + 100)).collect();
        let scores: Vec<f64> = (0..50).map(|i| f64::from(i % 5)).collect();
        let k = 7;
        let fast = top_k_pairs(&pairs, &scores, k, 3);
        let mut idx: Vec<usize> = (0..50).collect();
        idx.sort_by(|&a, &b| {
            scores[b]
                .total_cmp(&scores[a])
                .then_with(|| {
                    pair_jitter(pairs[b].0, pairs[b].1, 3)
                        .cmp(&pair_jitter(pairs[a].0, pairs[a].1, 3))
                })
                .then_with(|| b.cmp(&a))
        });
        let slow: Vec<(u32, u32)> = idx[..k].iter().map(|&i| pairs[i]).collect();
        assert_eq!(fast, slow);
    }
}
