//! The pair-parallel scoring engine.
//!
//! Every scoring surface in LinkLens — single-metric prediction, the
//! evaluation framework's policy groups, the classification pipeline's
//! feature matrix — funnels through this module instead of spawning one
//! thread per metric. The engine splits a shared candidate list into
//! cache-sized, *source-aligned* chunks and schedules (metric × chunk)
//! work items over a fixed worker pool ([`osn_graph::par`]).
//!
//! Three design points keep results bit-identical to serial execution:
//!
//! 1. **Per-snapshot preparation** is hoisted out of the chunk loop:
//!    [`Metric::prepare`] runs once (factorizations, landmark solves,
//!    eigendecompositions) and returns a [`PairScorer`] that each chunk
//!    calls read-only. Scores depend only on (snapshot, pair), never on
//!    chunk shape.
//! 2. **Source-aligned chunking** cuts only where `pairs[i].0` changes, so
//!    group-by-source metrics (SP, LP) still share one BFS/scatter pass
//!    per source inside a chunk.
//! 3. **Fused streaming top-k**: each chunk feeds its scores straight into
//!    a [`TopKAcc`] keyed by *global* pair index; per-chunk heaps merge
//!    into exactly the serial selection (see [`crate::topk`]) without ever
//!    materializing the full score vector.
//!
//! Metrics whose batch algorithm is itself parallel (the walk metrics'
//! per-source passes) opt out of chunking via [`ExecMode::WholeBatch`] and
//! receive the worker budget through [`Metric::score_pairs_t`].

use crate::candidates::CandidateSet;
use crate::fused::{self, FusedScratch, LocalKind};
use crate::solver::SolverCache;
use crate::topk::{self, TopKAcc};
use crate::traits::{Metric, ScoreContract};
use osn_graph::par;
use osn_graph::snapshot::Snapshot;
use osn_graph::NodeId;
use std::ops::Range;

/// Checks a scored slice against a metric's [`ScoreContract`], panicking
/// with the metric name, global pair index, and offending value on the
/// first violation. No-op unless [`osn_graph::audit::audit_enabled`] —
/// debug builds always audit; release builds audit under `--paranoid`.
///
/// `base` is the slice's offset into the full candidate list, so the
/// reported index is global even when a chunk tripped the check.
pub fn audit_scores(name: &str, contract: ScoreContract, scores: &[f64], base: usize) {
    if !osn_graph::audit::audit_enabled() {
        return;
    }
    for (i, &s) in scores.iter().enumerate() {
        if !s.is_finite() {
            panic!("metric {name} produced non-finite score {s} at pair index {}", base + i);
        }
        if contract == ScoreContract::FiniteNonNegative && s < 0.0 {
            panic!(
                "metric {name} violates its non-negative contract: score {s} at pair index {}",
                base + i
            );
        }
    }
}

/// How the engine executes one metric over a pair batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Split the pair list into source-aligned chunks scored in parallel
    /// through the metric's prepared [`PairScorer`] (the default).
    Chunked,
    /// Hand the metric the whole batch plus a worker budget; the metric
    /// parallelizes internally (walk metrics: per-source, with per-worker
    /// scratch reuse).
    WholeBatch,
}

/// A read-only scorer produced by [`Metric::prepare`] for one snapshot.
///
/// `score_chunk` must be a pure function of `(snapshot, pairs)` — chunk
/// boundaries must not influence any score, or thread counts would change
/// predictions.
pub trait PairScorer: Send + Sync {
    /// Scores one contiguous slice of the candidate list.
    fn score_chunk(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64>;
}

/// The default [`PairScorer`]: delegates every chunk to
/// [`Metric::score_pairs`]. Correct for any metric whose batch scoring has
/// no cross-pair state (all the local, Bayes, path, and time-aware
/// metrics).
pub struct ScoreAll<'m, M: ?Sized>(pub &'m M);

impl<M: Metric + ?Sized> PairScorer for ScoreAll<'_, M> {
    fn score_chunk(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        self.0.score_pairs(snap, pairs)
    }
}

/// Smallest chunk the engine bothers splitting off: below this, scheduling
/// overhead beats cache friendliness.
pub const MIN_CHUNK_PAIRS: usize = 1024;

/// Cuts `pairs` into contiguous ranges of roughly `len / (threads × 4)`
/// pairs (never below [`MIN_CHUNK_PAIRS`]), splitting only where the
/// source endpoint changes so group-by-source metrics keep their per-source
/// sharing. Candidate lists are sorted canonically, so equal sources are
/// always adjacent.
pub fn source_aligned_chunks(pairs: &[(NodeId, NodeId)], threads: usize) -> Vec<Range<usize>> {
    let len = pairs.len();
    if len == 0 {
        return Vec::new();
    }
    let target = (len / (threads.max(1) * 4).max(1)).max(MIN_CHUNK_PAIRS);
    let mut out = Vec::new();
    let mut start = 0;
    for i in 1..len {
        if i - start >= target && pairs[i].0 != pairs[i - 1].0 {
            out.push(start..i);
            start = i;
        }
    }
    out.push(start..len);
    out
}

/// Scores `pairs` with the engine: metrics advertising a
/// [`Metric::fused_kind`] go through the source-batched fused kernel
/// ([`crate::fused`], one witness walk per source); everything else is
/// prepared once and chunked across `threads` workers (or delegated whole
/// with the worker budget for [`ExecMode::WholeBatch`] metrics). Every
/// path is bit-identical to every other for every `threads` value.
pub fn score_pairs_t<M: Metric + ?Sized>(
    m: &M,
    snap: &Snapshot,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> Vec<f64> {
    let mut cache = SolverCache::transient();
    score_pairs_cached_t(m, snap, pairs, threads, &mut cache)
}

/// [`score_pairs_t`] with a caller-owned [`SolverCache`]: the walk metrics
/// route their solves through it (sharing the snapshot's transition view
/// and, on persistent caches, PPR warm-start vectors), and Katz prepares
/// reuse its adjacency CSR. Other metrics ignore the cache.
pub fn score_pairs_cached_t<M: Metric + ?Sized>(
    m: &M,
    snap: &Snapshot,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
    cache: &mut SolverCache,
) -> Vec<f64> {
    if let Some(kind) = m.fused_kind() {
        return fused_single_scores(m, kind, snap, pairs, threads);
    }
    score_pairs_per_pair_cached_t(m, snap, pairs, threads, cache)
}

/// The pre-fusion scoring path: chunked through the metric's own
/// [`Metric::score_pairs`], ignoring any [`Metric::fused_kind`]. Kept
/// public as the equivalence baseline for the fused kernel's property
/// tests and the `scalecheck` fused-scoring benchmark.
pub fn score_pairs_per_pair_t<M: Metric + ?Sized>(
    m: &M,
    snap: &Snapshot,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> Vec<f64> {
    let mut cache = SolverCache::transient();
    score_pairs_per_pair_cached_t(m, snap, pairs, threads, &mut cache)
}

fn score_pairs_per_pair_cached_t<M: Metric + ?Sized>(
    m: &M,
    snap: &Snapshot,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
    cache: &mut SolverCache,
) -> Vec<f64> {
    match m.exec_mode() {
        ExecMode::WholeBatch => {
            let scores = m.score_pairs_cached(snap, pairs, threads, cache);
            audit_scores(m.name(), m.score_contract(), &scores, 0);
            scores
        }
        ExecMode::Chunked => {
            let scorer = m.prepare_cached(snap, cache);
            let chunks = source_aligned_chunks(pairs, threads);
            if threads <= 1 || chunks.len() <= 1 {
                let scores = scorer.score_chunk(snap, pairs);
                audit_scores(m.name(), m.score_contract(), &scores, 0);
                return scores;
            }
            let parts = par::run_indexed(chunks.len(), threads, |c| {
                let scores = scorer.score_chunk(snap, &pairs[chunks[c].clone()]);
                audit_scores(m.name(), m.score_contract(), &scores, chunks[c].start);
                scores
            });
            parts.concat()
        }
    }
}

/// The serving-side targeted scoring path: scores one metric over a
/// (typically small, single-source) pair list with **caller-owned**
/// kernel state, so a long-lived query worker pays the per-snapshot
/// setup once per published version instead of once per query.
///
/// * Fused metrics score through [`fused::score_columns`] on the caller's
///   [`FusedCtx`]/[`FusedScratch`] — build the context once per snapshot
///   (e.g. with [`LocalKind::ALL`]) and reuse it across queries; a single
///   kind requested out of a wider context is bit-identical to the batch
///   engine's per-kind context.
/// * Everything else goes through the cached per-pair path at one worker
///   (per-source query batches are far below the engine's chunking
///   threshold), sharing the caller's [`SolverCache`] transition view and
///   per-source solve vectors across queries at the same version.
///
/// Bit-identical to [`score_pairs_cached_t`] with `threads = 1` on a
/// fresh cache — the contract the serving parity asserts rely on.
///
/// # Panics
/// Debug builds panic when `ctx` was built on a different snapshot than
/// `snap` (a stale context from a previous published version).
pub fn score_pairs_targeted<M: Metric + ?Sized>(
    m: &M,
    snap: &Snapshot,
    ctx: &fused::FusedCtx<'_>,
    scratch: &mut FusedScratch,
    pairs: &[(NodeId, NodeId)],
    cache: &mut SolverCache,
) -> Vec<f64> {
    debug_assert!(
        std::ptr::eq(ctx.snapshot(), snap),
        "targeted scoring with a kernel context from a different snapshot"
    );
    if let Some(kind) = m.fused_kind() {
        let kinds = [kind];
        let scores = fused::score_columns(ctx, scratch, pairs, &kinds).pop().unwrap_or_default();
        audit_scores(m.name(), m.score_contract(), &scores, 0);
        return scores;
    }
    score_pairs_per_pair_cached_t(m, snap, pairs, 1, cache)
}

/// Scores one fused-kernel metric over source-aligned chunks with
/// per-worker scratch reuse.
fn fused_single_scores<M: Metric + ?Sized>(
    m: &M,
    kind: LocalKind,
    snap: &Snapshot,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> Vec<f64> {
    let kinds = [kind];
    let ctx = fused::FusedCtx::build(snap, &kinds);
    let chunks = source_aligned_chunks(pairs, threads);
    if threads <= 1 || chunks.len() <= 1 {
        let mut scratch = FusedScratch::new(snap.node_count());
        let scores =
            fused::score_columns(&ctx, &mut scratch, pairs, &kinds).pop().unwrap_or_default();
        audit_scores(m.name(), m.score_contract(), &scores, 0);
        return scores;
    }
    let parts = par::run_indexed_init(
        chunks.len(),
        threads,
        || FusedScratch::new(snap.node_count()),
        |scratch, c| {
            let scores = fused::score_columns(&ctx, scratch, &pairs[chunks[c].clone()], &kinds)
                .pop()
                .unwrap_or_default();
            audit_scores(m.name(), m.score_contract(), &scores, chunks[c].start);
            scores
        },
    );
    parts.concat()
}

/// Engine-backed top-k prediction with an explicit worker count: fused
/// metrics score through the source-batched kernel, chunked metrics
/// stream each chunk's scores into a per-chunk [`TopKAcc`] (global
/// indices) and merge; whole-batch metrics score once and select serially.
/// The returned pairs — including tie-break ordering — are identical for
/// every `threads` value and every path.
pub fn predict_top_k_t<M: Metric + ?Sized>(
    m: &M,
    snap: &Snapshot,
    cands: &CandidateSet,
    k: usize,
    seed: u64,
    threads: usize,
) -> Vec<(NodeId, NodeId)> {
    if let Some(kind) = m.fused_kind() {
        let pairs = cands.pairs();
        let kinds = [kind];
        let ctx = fused::FusedCtx::build(snap, &kinds);
        let chunks = source_aligned_chunks(pairs, threads);
        let accs = par::run_indexed_init(
            chunks.len(),
            threads.max(1),
            || FusedScratch::new(snap.node_count()),
            |scratch, c| {
                let range = chunks[c].clone();
                let slice = &pairs[range.clone()];
                let scores =
                    fused::score_columns(&ctx, scratch, slice, &kinds).pop().unwrap_or_default();
                audit_scores(m.name(), m.score_contract(), &scores, range.start);
                let mut acc = TopKAcc::new(k, seed);
                for (off, (&pair, &score)) in slice.iter().zip(&scores).enumerate() {
                    acc.push(pair, score, range.start + off);
                }
                acc
            },
        );
        let mut merged = TopKAcc::new(k, seed);
        for acc in accs {
            merged.merge(acc);
        }
        return merged.finish();
    }
    predict_top_k_per_pair_t(m, snap, cands, k, seed, threads)
}

/// The pre-fusion top-k path (chunked through [`Metric::score_pairs`],
/// ignoring [`Metric::fused_kind`]) — the equivalence baseline for the
/// fused kernel's tests and benchmarks.
pub fn predict_top_k_per_pair_t<M: Metric + ?Sized>(
    m: &M,
    snap: &Snapshot,
    cands: &CandidateSet,
    k: usize,
    seed: u64,
    threads: usize,
) -> Vec<(NodeId, NodeId)> {
    let mut cache = SolverCache::transient();
    predict_top_k_per_pair_cached_t(m, snap, cands, k, seed, threads, &mut cache)
}

#[allow(clippy::too_many_arguments)]
fn predict_top_k_per_pair_cached_t<M: Metric + ?Sized>(
    m: &M,
    snap: &Snapshot,
    cands: &CandidateSet,
    k: usize,
    seed: u64,
    threads: usize,
    cache: &mut SolverCache,
) -> Vec<(NodeId, NodeId)> {
    let pairs = cands.pairs();
    match m.exec_mode() {
        ExecMode::WholeBatch => {
            let scores = m.score_pairs_cached(snap, pairs, threads, cache);
            audit_scores(m.name(), m.score_contract(), &scores, 0);
            topk::top_k_pairs(pairs, &scores, k, seed)
        }
        ExecMode::Chunked => {
            let scorer = m.prepare_cached(snap, cache);
            let chunks = source_aligned_chunks(pairs, threads);
            let accs = par::run_indexed(chunks.len(), threads.max(1), |c| {
                let range = chunks[c].clone();
                let slice = &pairs[range.clone()];
                let scores = scorer.score_chunk(snap, slice);
                audit_scores(m.name(), m.score_contract(), &scores, range.start);
                let mut acc = TopKAcc::new(k, seed);
                for (off, (&pair, &score)) in slice.iter().zip(&scores).enumerate() {
                    acc.push(pair, score, range.start + off);
                }
                acc
            });
            let mut merged = TopKAcc::new(k, seed);
            for acc in accs {
                merged.merge(acc);
            }
            merged.finish()
        }
    }
}

/// One (metric, chunk) work item for the shared pool.
struct Item {
    metric: usize,
    chunk: Range<usize>,
}

/// Splits metric indices into the fused-kernel group (with their kinds,
/// parallel-indexed) and everything else.
fn fused_partition(metrics: &[&dyn Metric]) -> (Vec<usize>, Vec<LocalKind>, Vec<usize>) {
    let mut fused_idx = Vec::new();
    let mut kinds = Vec::new();
    let mut rest = Vec::new();
    for (i, m) in metrics.iter().enumerate() {
        match m.fused_kind() {
            Some(k) => {
                fused_idx.push(i);
                kinds.push(k);
            }
            None => rest.push(i),
        }
    }
    (fused_idx, kinds, rest)
}

/// Splits metric indices by execution mode.
fn by_mode(metrics: &[&dyn Metric]) -> (Vec<usize>, Vec<usize>) {
    let mut chunked = Vec::new();
    let mut whole = Vec::new();
    for (i, m) in metrics.iter().enumerate() {
        match m.exec_mode() {
            ExecMode::Chunked => chunked.push(i),
            ExecMode::WholeBatch => whole.push(i),
        }
    }
    (chunked, whole)
}

/// Top-k predictions for several metrics over one shared candidate set.
///
/// Metrics advertising a [`Metric::fused_kind`] are scored together by the
/// source-batched kernel — one witness walk per source produces every
/// fused column at once, with one shared kernel context (degree + Bayes
/// tables built once, not per metric). All remaining chunked metrics are
/// prepared in parallel, then their (metric × chunk) items are scheduled
/// over one `threads`-wide pool — a slow metric no longer serializes the
/// transition the way one-thread-per-metric did. Whole-batch metrics run
/// afterwards, each using the full worker budget internally. Results are
/// in input metric order and bit-identical to `threads = 1`.
pub fn predict_top_k_many_t(
    metrics: &[&dyn Metric],
    snap: &Snapshot,
    cands: &CandidateSet,
    k: usize,
    seed: u64,
    threads: usize,
) -> Vec<Vec<(NodeId, NodeId)>> {
    let mut cache = SolverCache::transient();
    predict_top_k_many_cached_t(metrics, snap, cands, k, seed, threads, &mut cache)
}

/// [`predict_top_k_many_t`] with a caller-owned [`SolverCache`]. The
/// snapshot sweep passes a persistent cache so consecutive snapshots share
/// warm-start vectors; the cache also fixes the redundant-recompute issue
/// the one-cache-per-metric path had — every global metric in the group
/// now reads one shared transition view per snapshot, and each distinct
/// source endpoint's solve vector is computed once per (metric, snapshot)
/// via the solver's source plan instead of once per scoring pass.
#[allow(clippy::too_many_arguments)]
pub fn predict_top_k_many_cached_t(
    metrics: &[&dyn Metric],
    snap: &Snapshot,
    cands: &CandidateSet,
    k: usize,
    seed: u64,
    threads: usize,
    cache: &mut SolverCache,
) -> Vec<Vec<(NodeId, NodeId)>> {
    let pairs = cands.pairs();
    let threads = threads.max(1);
    cache.ensure_snapshot(snap);
    let (fused_idx, kinds, rest) = fused_partition(metrics);
    if fused_idx.is_empty() {
        return predict_top_k_many_per_pair_cached_t(metrics, snap, cands, k, seed, threads, cache);
    }
    let mut out: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); metrics.len()];

    let ctx = fused::FusedCtx::build(snap, &kinds);
    let chunks = source_aligned_chunks(pairs, threads);
    let chunk_accs = par::run_indexed_init(
        chunks.len(),
        threads,
        || FusedScratch::new(snap.node_count()),
        |scratch, c| {
            let range = chunks[c].clone();
            let slice = &pairs[range.clone()];
            let cols = fused::score_columns(&ctx, scratch, slice, &kinds);
            let mut accs: Vec<TopKAcc> = kinds.iter().map(|_| TopKAcc::new(k, seed)).collect();
            for (ki, col) in cols.iter().enumerate() {
                let m = metrics[fused_idx[ki]];
                audit_scores(m.name(), m.score_contract(), col, range.start);
                for (off, (&pair, &score)) in slice.iter().zip(col).enumerate() {
                    accs[ki].push(pair, score, range.start + off);
                }
            }
            accs
        },
    );
    let mut merged: Vec<TopKAcc> = kinds.iter().map(|_| TopKAcc::new(k, seed)).collect();
    for accs in chunk_accs {
        for (ki, acc) in accs.into_iter().enumerate() {
            merged[ki].merge(acc);
        }
    }
    for (ki, acc) in merged.into_iter().enumerate() {
        out[fused_idx[ki]] = acc.finish();
    }

    if !rest.is_empty() {
        let rm: Vec<&dyn Metric> = rest.iter().map(|&i| metrics[i]).collect();
        let preds = predict_top_k_many_per_pair_cached_t(&rm, snap, cands, k, seed, threads, cache);
        for (j, p) in preds.into_iter().enumerate() {
            out[rest[j]] = p;
        }
    }
    out
}

/// The pre-fusion multi-metric top-k path ((metric × chunk) scheduling
/// through each metric's own scorer, ignoring [`Metric::fused_kind`]) —
/// the equivalence baseline for the fused kernel's tests and benchmarks.
pub fn predict_top_k_many_per_pair_t(
    metrics: &[&dyn Metric],
    snap: &Snapshot,
    cands: &CandidateSet,
    k: usize,
    seed: u64,
    threads: usize,
) -> Vec<Vec<(NodeId, NodeId)>> {
    let mut cache = SolverCache::transient();
    predict_top_k_many_per_pair_cached_t(metrics, snap, cands, k, seed, threads, &mut cache)
}

#[allow(clippy::too_many_arguments)]
fn predict_top_k_many_per_pair_cached_t(
    metrics: &[&dyn Metric],
    snap: &Snapshot,
    cands: &CandidateSet,
    k: usize,
    seed: u64,
    threads: usize,
    cache: &mut SolverCache,
) -> Vec<Vec<(NodeId, NodeId)>> {
    let pairs = cands.pairs();
    let threads = threads.max(1);
    let (chunked, whole) = by_mode(metrics);
    let mut out: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); metrics.len()];

    if !chunked.is_empty() {
        // Shared reborrow: prepares only read the cache (its transition
        // view), so they can run in parallel across metrics.
        let cache_ref: &SolverCache = cache;
        let scorers = par::run_indexed(chunked.len(), threads, |i| {
            metrics[chunked[i]].prepare_cached(snap, cache_ref)
        });
        let chunks = source_aligned_chunks(pairs, threads);
        let items: Vec<Item> = chunked
            .iter()
            .enumerate()
            .flat_map(|(si, _)| chunks.iter().map(move |c| Item { metric: si, chunk: c.clone() }))
            .collect();
        let accs = par::run_indexed(items.len(), threads, |w| {
            let item = &items[w];
            let slice = &pairs[item.chunk.clone()];
            let scores = scorers[item.metric].score_chunk(snap, slice);
            let m = metrics[chunked[item.metric]];
            audit_scores(m.name(), m.score_contract(), &scores, item.chunk.start);
            let mut acc = TopKAcc::new(k, seed);
            for (off, (&pair, &score)) in slice.iter().zip(&scores).enumerate() {
                acc.push(pair, score, item.chunk.start + off);
            }
            acc
        });
        let mut merged: Vec<TopKAcc> = chunked.iter().map(|_| TopKAcc::new(k, seed)).collect();
        for (item, acc) in items.iter().zip(accs) {
            merged[item.metric].merge(acc);
        }
        for (si, acc) in merged.into_iter().enumerate() {
            out[chunked[si]] = acc.finish();
        }
    }
    for &mi in &whole {
        let scores = metrics[mi].score_pairs_cached(snap, pairs, threads, cache);
        audit_scores(metrics[mi].name(), metrics[mi].score_contract(), &scores, 0);
        out[mi] = topk::top_k_pairs(pairs, &scores, k, seed);
    }
    out
}

/// Score columns (one `Vec<f64>` per metric, aligned with `pairs`) for
/// several metrics — the classification pipeline's feature-matrix
/// backend. Fused-kernel metrics are produced together, one witness walk
/// per source per chunk yielding every fused column at once; the rest is
/// scheduled as (metric × chunk) items over one pool. Column contents are
/// bit-identical for every `threads` value.
pub fn score_matrix_t(
    metrics: &[&dyn Metric],
    snap: &Snapshot,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> Vec<Vec<f64>> {
    let mut cache = SolverCache::transient();
    score_matrix_cached_t(metrics, snap, pairs, threads, &mut cache)
}

/// [`score_matrix_t`] with a caller-owned [`SolverCache`] (see
/// [`predict_top_k_many_cached_t`] for the sharing/warm-start semantics).
pub fn score_matrix_cached_t(
    metrics: &[&dyn Metric],
    snap: &Snapshot,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
    cache: &mut SolverCache,
) -> Vec<Vec<f64>> {
    let threads = threads.max(1);
    cache.ensure_snapshot(snap);
    let (fused_idx, kinds, rest) = fused_partition(metrics);
    if fused_idx.is_empty() {
        return score_matrix_per_pair_cached_t(metrics, snap, pairs, threads, cache);
    }
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); metrics.len()];

    let ctx = fused::FusedCtx::build(snap, &kinds);
    let chunks = source_aligned_chunks(pairs, threads);
    let parts = par::run_indexed_init(
        chunks.len(),
        threads,
        || FusedScratch::new(snap.node_count()),
        |scratch, c| {
            let cols = fused::score_columns(&ctx, scratch, &pairs[chunks[c].clone()], &kinds);
            for (ki, col) in cols.iter().enumerate() {
                let m = metrics[fused_idx[ki]];
                audit_scores(m.name(), m.score_contract(), col, chunks[c].start);
            }
            cols
        },
    );
    let mut columns: Vec<Vec<f64>> =
        kinds.iter().map(|_| Vec::with_capacity(pairs.len())).collect();
    for part in parts {
        for (ki, col) in part.into_iter().enumerate() {
            columns[ki].extend(col);
        }
    }
    for (ki, col) in columns.into_iter().enumerate() {
        out[fused_idx[ki]] = col;
    }

    if !rest.is_empty() {
        let rm: Vec<&dyn Metric> = rest.iter().map(|&i| metrics[i]).collect();
        let cols = score_matrix_per_pair_cached_t(&rm, snap, pairs, threads, cache);
        for (j, col) in cols.into_iter().enumerate() {
            out[rest[j]] = col;
        }
    }
    out
}

/// The pre-fusion feature-matrix path ((metric × chunk) scheduling through
/// each metric's own scorer, ignoring [`Metric::fused_kind`]) — the
/// equivalence baseline for the fused kernel's tests and the `scalecheck`
/// fused-scoring benchmark.
pub fn score_matrix_per_pair_t(
    metrics: &[&dyn Metric],
    snap: &Snapshot,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> Vec<Vec<f64>> {
    let mut cache = SolverCache::transient();
    score_matrix_per_pair_cached_t(metrics, snap, pairs, threads, &mut cache)
}

fn score_matrix_per_pair_cached_t(
    metrics: &[&dyn Metric],
    snap: &Snapshot,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
    cache: &mut SolverCache,
) -> Vec<Vec<f64>> {
    let threads = threads.max(1);
    let (chunked, whole) = by_mode(metrics);
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); metrics.len()];

    if !chunked.is_empty() {
        // Shared reborrow: prepares only read the cache (its transition
        // view), so they can run in parallel across metrics.
        let cache_ref: &SolverCache = cache;
        let scorers = par::run_indexed(chunked.len(), threads, |i| {
            metrics[chunked[i]].prepare_cached(snap, cache_ref)
        });
        let chunks = source_aligned_chunks(pairs, threads);
        let items: Vec<Item> = chunked
            .iter()
            .enumerate()
            .flat_map(|(si, _)| chunks.iter().map(move |c| Item { metric: si, chunk: c.clone() }))
            .collect();
        let parts = par::run_indexed(items.len(), threads, |w| {
            let item = &items[w];
            let scores = scorers[item.metric].score_chunk(snap, &pairs[item.chunk.clone()]);
            let m = metrics[chunked[item.metric]];
            audit_scores(m.name(), m.score_contract(), &scores, item.chunk.start);
            scores
        });
        let mut columns: Vec<Vec<f64>> =
            chunked.iter().map(|_| Vec::with_capacity(pairs.len())).collect();
        for (item, part) in items.iter().zip(parts) {
            debug_assert_eq!(columns[item.metric].len(), item.chunk.start);
            columns[item.metric].extend(part);
        }
        for (si, col) in columns.into_iter().enumerate() {
            out[chunked[si]] = col;
        }
    }
    for &mi in &whole {
        let scores = metrics[mi].score_pairs_cached(snap, pairs, threads, cache);
        audit_scores(metrics[mi].name(), metrics[mi].score_contract(), &scores, 0);
        out[mi] = scores;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::CandidatePolicy;

    /// Two bridged triangles plus a pendant path.
    fn fixture() -> Snapshot {
        Snapshot::from_edges(
            8,
            &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5), (5, 6), (6, 7)],
        )
    }

    #[test]
    fn chunks_are_source_aligned_and_cover() {
        let pairs: Vec<(NodeId, NodeId)> =
            (0..40u32).flat_map(|u| (u + 1..u + 5).map(move |v| (u / 3, v + 100))).collect();
        let chunks = source_aligned_chunks(&pairs, 4);
        let mut covered = 0;
        for c in &chunks {
            assert_eq!(c.start, covered);
            covered = c.end;
            if c.start > 0 {
                assert_ne!(
                    pairs[c.start].0,
                    pairs[c.start - 1].0,
                    "chunk boundary split a source run"
                );
            }
        }
        assert_eq!(covered, pairs.len());
    }

    #[test]
    fn engine_scores_match_direct_scoring() {
        let snap = fixture();
        let cands = CandidateSet::build(&snap, CandidatePolicy::ThreeHop, 0);
        for m in crate::all_metrics() {
            let direct = m.score_pairs(&snap, cands.pairs());
            for threads in [1, 2, 4] {
                let engine = score_pairs_t(m.as_ref(), &snap, cands.pairs(), threads);
                assert_eq!(engine, direct, "{} threads={threads}", m.name());
            }
        }
    }

    #[test]
    fn multi_metric_predictions_match_single_metric() {
        let snap = fixture();
        let cands = CandidateSet::build(&snap, CandidatePolicy::Global, 2);
        let metrics = crate::all_metrics();
        let refs: Vec<&dyn Metric> = metrics.iter().map(|m| m.as_ref()).collect();
        let many = predict_top_k_many_t(&refs, &snap, &cands, 4, 0x11A5, 3);
        for (i, m) in refs.iter().enumerate() {
            let single = predict_top_k_t(*m, &snap, &cands, 4, 0x11A5, 1);
            assert_eq!(many[i], single, "{}", m.name());
        }
    }

    /// A metric that lies about its output, for audit-layer tests.
    struct Broken {
        value: f64,
        contract: ScoreContract,
    }

    impl Metric for Broken {
        fn name(&self) -> &'static str {
            "Broken"
        }
        fn candidate_policy(&self) -> CandidatePolicy {
            CandidatePolicy::TwoHop
        }
        fn score_contract(&self) -> ScoreContract {
            self.contract
        }
        fn score_pairs(&self, _snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
            vec![self.value; pairs.len()]
        }
    }

    #[test]
    #[should_panic(expected = "non-finite score")]
    fn audit_catches_non_finite_scores() {
        let snap = fixture();
        let bad = Broken { value: f64::NAN, contract: ScoreContract::Finite };
        score_pairs_t(&bad, &snap, &[(0, 4), (1, 5)], 1);
    }

    #[test]
    #[should_panic(expected = "non-negative contract")]
    fn audit_catches_contract_violation() {
        let snap = fixture();
        let bad = Broken { value: -1.0, contract: ScoreContract::FiniteNonNegative };
        score_pairs_t(&bad, &snap, &[(0, 4), (1, 5)], 1);
    }

    #[test]
    fn audit_accepts_negative_scores_under_finite_contract() {
        let snap = fixture();
        let ok = Broken { value: -1.0, contract: ScoreContract::Finite };
        assert_eq!(score_pairs_t(&ok, &snap, &[(0, 4)], 1), vec![-1.0]);
    }

    #[test]
    fn targeted_scoring_matches_batched_engine() {
        let snap = fixture();
        let cands = CandidateSet::build(&snap, CandidatePolicy::Global, 2);
        let ctx = fused::FusedCtx::build(&snap, &LocalKind::ALL);
        let mut scratch = FusedScratch::new(snap.node_count());
        for m in crate::all_metrics() {
            let mut targeted_cache = SolverCache::transient();
            // Per-source slices, the shape serving queries take.
            for chunk in source_aligned_chunks(cands.pairs(), 1) {
                let slice = &cands.pairs()[chunk];
                let targeted = score_pairs_targeted(
                    m.as_ref(),
                    &snap,
                    &ctx,
                    &mut scratch,
                    slice,
                    &mut targeted_cache,
                );
                let batched = score_pairs_t(m.as_ref(), &snap, slice, 1);
                assert_eq!(targeted, batched, "{}", m.name());
            }
        }
    }

    #[test]
    fn score_matrix_matches_columns() {
        let snap = fixture();
        let cands = CandidateSet::build(&snap, CandidatePolicy::ThreeHop, 0);
        let metrics = crate::all_metrics();
        let refs: Vec<&dyn Metric> = metrics.iter().map(|m| m.as_ref()).collect();
        let matrix = score_matrix_t(&refs, &snap, cands.pairs(), 4);
        for (i, m) in refs.iter().enumerate() {
            assert_eq!(matrix[i], m.score_pairs(&snap, cands.pairs()), "{}", m.name());
        }
    }
}
