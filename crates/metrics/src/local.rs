//! Neighborhood heuristics: CN, JC, AA, RA, PA (Table 3 rows 1–4 and 13).

use crate::fused::LocalKind;
use crate::traits::{CandidatePolicy, Metric, ScoreContract};
use osn_graph::snapshot::Snapshot;
use osn_graph::NodeId;

/// Common Neighbors [Newman 2001]: `|Γ(u) ∩ Γ(v)|`.
pub struct CommonNeighbors;

impl Metric for CommonNeighbors {
    fn name(&self) -> &'static str {
        "CN"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::TwoHop
    }

    fn score_contract(&self) -> ScoreContract {
        ScoreContract::FiniteNonNegative
    }

    fn fused_kind(&self) -> Option<LocalKind> {
        Some(LocalKind::Cn)
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        // linklens-allow(per-pair-intersection): reference implementation; the engine routes batches through the fused kernel
        pairs.iter().map(|&(u, v)| snap.common_neighbor_count(u, v) as f64).collect()
    }
}

/// Jaccard's Coefficient \[23\]: `|Γ(u) ∩ Γ(v)| / |Γ(u) ∪ Γ(v)|`.
/// Zero when both neighborhoods are empty.
pub struct JaccardCoefficient;

impl Metric for JaccardCoefficient {
    fn name(&self) -> &'static str {
        "JC"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::TwoHop
    }

    fn score_contract(&self) -> ScoreContract {
        ScoreContract::FiniteNonNegative
    }

    fn fused_kind(&self) -> Option<LocalKind> {
        Some(LocalKind::Jc)
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        pairs
            .iter()
            .map(|&(u, v)| {
                // linklens-allow(per-pair-intersection): reference implementation; the engine routes batches through the fused kernel
                let inter = snap.common_neighbor_count(u, v);
                let union = snap.degree(u) + snap.degree(v) - inter;
                if union == 0 {
                    0.0
                } else {
                    inter as f64 / union as f64
                }
            })
            .collect()
    }
}

/// Adamic/Adar \[2\]: `Σ_{w ∈ Γ(u) ∩ Γ(v)} 1 / log(deg(w))`.
/// Common neighbors always have degree ≥ 2, so the log never vanishes.
pub struct AdamicAdar;

impl Metric for AdamicAdar {
    fn name(&self) -> &'static str {
        "AA"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::TwoHop
    }

    fn score_contract(&self) -> ScoreContract {
        ScoreContract::FiniteNonNegative
    }

    fn fused_kind(&self) -> Option<LocalKind> {
        Some(LocalKind::Aa)
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        pairs
            .iter()
            .map(|&(u, v)| {
                // linklens-allow(per-pair-intersection): reference implementation; the engine routes batches through the fused kernel
                snap.common_neighbors(u, v).map(|w| 1.0 / (snap.degree(w) as f64).ln()).sum()
            })
            .collect()
    }
}

/// Resource Allocation \[45\]: `Σ_{w ∈ Γ(u) ∩ Γ(v)} 1 / deg(w)`.
pub struct ResourceAllocation;

impl Metric for ResourceAllocation {
    fn name(&self) -> &'static str {
        "RA"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::TwoHop
    }

    fn score_contract(&self) -> ScoreContract {
        ScoreContract::FiniteNonNegative
    }

    fn fused_kind(&self) -> Option<LocalKind> {
        Some(LocalKind::Ra)
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        pairs
            .iter()
            // linklens-allow(per-pair-intersection): reference implementation; the engine routes batches through the fused kernel
            .map(|&(u, v)| snap.common_neighbors(u, v).map(|w| 1.0 / snap.degree(w) as f64).sum())
            .collect()
    }
}

/// Preferential Attachment \[6\]: `deg(u) · deg(v)` — the "rich get richer"
/// score the paper finds near-useless on friendship networks (§4.2).
pub struct PreferentialAttachment;

impl Metric for PreferentialAttachment {
    fn name(&self) -> &'static str {
        "PA"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::Global
    }

    fn score_contract(&self) -> ScoreContract {
        ScoreContract::FiniteNonNegative
    }

    fn fused_kind(&self) -> Option<LocalKind> {
        Some(LocalKind::Pa)
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        pairs.iter().map(|&(u, v)| (snap.degree(u) * snap.degree(v)) as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Square 0-1-2-3 with diagonal 0-2 and pendant 4 attached to 0.
    ///
    /// ```text
    ///   1 — 2
    ///   | / |
    ///   0 — 3
    ///   |
    ///   4
    /// ```
    fn fixture() -> Snapshot {
        Snapshot::from_edges(5, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2), (0, 4)])
    }

    #[test]
    fn cn_counts() {
        let s = fixture();
        // Pair (1,3): common neighbors {0, 2}.
        assert_eq!(CommonNeighbors.score_pairs(&s, &[(1, 3), (1, 4), (2, 4)]), vec![2.0, 1.0, 1.0]);
    }

    #[test]
    fn jc_normalizes_by_union() {
        let s = fixture();
        // (1,3): Γ(1)={0,2}, Γ(3)={0,2} → inter 2, union 2 → 1.0.
        // (1,4): Γ(4)={0} → inter 1, union 2 → 0.5.
        let scores = JaccardCoefficient.score_pairs(&s, &[(1, 3), (1, 4)]);
        assert_eq!(scores, vec![1.0, 0.5]);
    }

    #[test]
    fn jc_isolated_pair_is_zero() {
        let s = Snapshot::from_edges(3, &[(0, 1)]);
        // Node 2 is isolated; (1,2) has union = {0}, inter = 0.
        assert_eq!(JaccardCoefficient.score_pairs(&s, &[(1, 2)]), vec![0.0]);
    }

    #[test]
    fn aa_weights_low_degree_witnesses_higher() {
        let s = fixture();
        // (1,3) witnesses: 0 (deg 4) and 2 (deg 3).
        let expect = 1.0 / 4.0_f64.ln() + 1.0 / 3.0_f64.ln();
        let got = AdamicAdar.score_pairs(&s, &[(1, 3)])[0];
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn ra_weights_inverse_degree() {
        let s = fixture();
        let expect = 1.0 / 4.0 + 1.0 / 3.0;
        let got = ResourceAllocation.score_pairs(&s, &[(1, 3)])[0];
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn ra_bounded_by_cn() {
        // RA ≤ CN/2 because every witness has degree ≥ 2.
        let s = fixture();
        let pairs = [(1, 3), (1, 4), (2, 4), (3, 4)];
        let ra = ResourceAllocation.score_pairs(&s, &pairs);
        let cn = CommonNeighbors.score_pairs(&s, &pairs);
        for (r, c) in ra.iter().zip(&cn) {
            assert!(*r <= c / 2.0 + 1e-12);
        }
    }

    #[test]
    fn pa_is_degree_product() {
        let s = fixture();
        // deg(1)=2, deg(3)=2 → 4; deg(0)=4 … pair (0, 2) is an edge but PA
        // scores any pair it is handed.
        assert_eq!(PreferentialAttachment.score_pairs(&s, &[(1, 3)]), vec![4.0]);
        assert_eq!(PreferentialAttachment.score_pairs(&s, &[(1, 4)]), vec![2.0]);
    }

    #[test]
    fn scores_are_symmetric_under_pair_order() {
        // The trait takes canonical pairs, but the formulas must not care.
        let s = fixture();
        for m in [
            &CommonNeighbors as &dyn Metric,
            &JaccardCoefficient,
            &AdamicAdar,
            &ResourceAllocation,
            &PreferentialAttachment,
        ] {
            let a = m.score_pairs(&s, &[(1, 3)])[0];
            let b = m.score_pairs(&s, &[(3, 1)])[0];
            assert_eq!(a, b, "{} asymmetric", m.name());
        }
    }
}
