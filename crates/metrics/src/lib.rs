//! # osn-metrics
//!
//! The 14 metric-based link-prediction algorithms evaluated by Liu et al.
//! (IMC 2016, Table 3), plus the two Katz implementations the paper
//! compares (low-rank and scalable-proximity). Every metric implements the
//! [`traits::Metric`] trait: given a [`osn_graph::snapshot::Snapshot`] and
//! a batch of unconnected node pairs, produce one ranking score per pair.
//!
//! | Module | Metrics | Paper reference |
//! |---|---|---|
//! | [`local`] | CN, JC, AA, RA, PA | \[32\], \[23\], \[2\], \[45\], \[6\] |
//! | [`bayes`] | BCN, BAA, BRA (local naive Bayes) | \[26\] |
//! | [`path`] | SP (shortest path), LP (local path, ε = 1e-4) | \[20\], \[45\] |
//! | [`walk`] | LRW (m = 3), PPR (α = 0.15, forward push) | \[25\], \[5\] |
//! | [`katz`] | Katz-lr (rank-r Lanczos), Katz-sc (landmarks) | \[1\], \[38\] |
//! | [`rescal`] | RESCAL ALS (rank r) | \[33\] |
//!
//! [`timeaware`] adds the recency-weighted extension metrics (the
//! time-aware related work of §6.3 / \[40\]); they are not part of the
//! paper's 14 and are excluded from [`all_metrics`].
//!
//! ## Example
//!
//! ```
//! use osn_graph::snapshot::Snapshot;
//! use osn_metrics::local::ResourceAllocation;
//! use osn_metrics::traits::Metric;
//!
//! // A square with one diagonal: does (1, 3) close next?
//! let snap = Snapshot::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
//! let scores = ResourceAllocation.score_pairs(&snap, &[(1, 3)]);
//! assert!(scores[0] > 0.0, "two shared neighbors back the pair");
//! ```
//!
//! Candidate enumeration lives in [`candidates`]; metrics only ever see a
//! caller-chosen pair batch, so the expensive enumeration is shared across
//! all metrics per snapshot (the evaluation framework exploits this).
//! Top-k selection with deterministic seeded tie-breaking — the paper's
//! "random choice among ties" for SP — is in [`topk`]. Parallel execution
//! (chunked candidate scoring, (metric × chunk) scheduling, fused
//! streaming top-k) is in [`exec`]; predictions are bit-identical across
//! worker counts. The local and Bayes metrics are scored through the
//! source-batched fused kernel in [`fused`] — one witness walk per source
//! instead of per-pair intersections — with bit-identical results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bayes;
pub mod candidates;
pub mod exec;
pub mod fused;
pub mod katz;
pub mod local;
pub mod path;
pub mod rescal;
pub mod solver;
pub mod timeaware;
pub mod topk;
pub mod traits;
pub mod walk;

use traits::Metric;

/// All metric instances with the paper's parameters, in Table 4's column
/// order (plus CN/AA/RA, which the paper implements but omits from plots
/// because their naive-Bayes variants dominate them).
pub fn all_metrics() -> Vec<Box<dyn Metric>> {
    vec![
        Box::new(local::CommonNeighbors),
        Box::new(local::JaccardCoefficient),
        Box::new(local::AdamicAdar),
        Box::new(local::ResourceAllocation),
        Box::new(bayes::BayesCommonNeighbors),
        Box::new(bayes::BayesAdamicAdar),
        Box::new(bayes::BayesResourceAllocation),
        Box::new(path::LocalPath::default()),
        Box::new(walk::LocalRandomWalk::default()),
        Box::new(walk::PersonalizedPageRank::default()),
        Box::new(path::ShortestPath::default()),
        Box::new(katz::KatzLr::default()),
        Box::new(katz::KatzSc::default()),
        Box::new(rescal::Rescal::default()),
        Box::new(local::PreferentialAttachment),
    ]
}

/// The 12 metrics shown in the paper's Figure 5 / Table 4 (CN, AA, RA are
/// dropped in favor of their local-naive-Bayes versions, as in the paper).
pub fn figure5_metrics() -> Vec<Box<dyn Metric>> {
    all_metrics().into_iter().filter(|m| !matches!(m.name(), "CN" | "AA" | "RA")).collect()
}

/// Looks a metric up by its display name (e.g. `"BRA"`, `"Katz-lr"`).
pub fn metric_by_name(name: &str) -> Option<Box<dyn Metric>> {
    all_metrics().into_iter().find(|m| m.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_metrics_has_fifteen_entries() {
        // 14 algorithms with Katz counted twice (lr + sc implementations).
        assert_eq!(all_metrics().len(), 15);
    }

    #[test]
    fn figure5_excludes_dominated_locals() {
        let names: Vec<&str> = figure5_metrics().iter().map(|m| m.name()).collect();
        assert!(!names.contains(&"CN"));
        assert!(names.contains(&"BCN"));
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn metric_names_are_unique() {
        let mut names: Vec<&str> = all_metrics().iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn lookup_by_name() {
        assert!(metric_by_name("BRA").is_some());
        assert!(metric_by_name("Katz-lr").is_some());
        assert!(metric_by_name("nope").is_none());
    }
}
