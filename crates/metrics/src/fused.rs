//! Source-batched fused scoring kernel for the local metrics.
//!
//! The per-pair path pays a fresh sorted-merge intersection
//! (`Snapshot::common_neighbors`) per metric per pair, so scoring
//! `|metrics|` local metrics over `|pairs|` candidates costs
//! `|metrics| × |pairs|` merges. But every local-information index —
//! CN, JC, AA, RA and their naive-Bayes variants — is a sum over the
//! *same* witnesses `w ∈ Γ(u) ∩ Γ(v)`, and every candidate of a source
//! `u` draws its witnesses from `Γ(u)`. This kernel therefore batches by
//! source: it stamps the targets of `u` into an epoch-stamped marker
//! array, walks the CSR rows of `Γ(u)` **once**, and scatter-accumulates
//! each metric's witness contribution into per-candidate slots. JC, PA,
//! and the Bayes variants then derive from per-snapshot cached degree
//! tables ([`Snapshot::degree_tables`]) and naive-Bayes weight tables.
//!
//! **Bit-identity.** The kernel is bit-for-bit identical to the per-pair
//! path, not merely numerically close:
//!
//! * the outer walk visits witnesses `w ∈ Γ(u)` in ascending order — the
//!   same order a sorted-merge intersection of `Γ(u)` and `Γ(v)` yields —
//!   so every per-candidate accumulator sees its terms in the per-pair
//!   summation order (f64 `sum()` folds left-to-right from `0.0`);
//! * each term is computed by the same expression as the per-pair path
//!   (`1.0 / (deg as f64).ln()`, `(log_s + log_r[w]) / deg as f64`, …),
//!   cached once per snapshot instead of recomputed per witness;
//! * derived scores reuse the exact per-pair expressions, including JC's
//!   integer union arithmetic and PA's integer degree product.
//!
//! [`enumerate_and_score_t`] fuses candidate *enumeration* into the same
//! pass via the shared [`osn_graph::traversal::TwoHopScan`] walk, so a
//! `TwoHop`-policy sweep never materializes the pair list separately —
//! and cannot drift from [`crate::candidates::CandidateSet::build`],
//! which uses the same walk.

use crate::bayes::BayesContext;
use crate::traits::Metric;
use osn_graph::activity::{NodeActivity, PruneSpec};
use osn_graph::snapshot::{DegreeTables, Snapshot};
use osn_graph::traversal::TwoHopScan;
use osn_graph::{par, NodeId};

/// The local metric a fused column computes. Metrics advertise their kind
/// through [`Metric::fused_kind`]; the engine groups all advertised kinds
/// of a batch into one kernel pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalKind {
    /// Common Neighbors: `|Γ(u) ∩ Γ(v)|`.
    Cn,
    /// Jaccard's Coefficient: `|Γ(u) ∩ Γ(v)| / |Γ(u) ∪ Γ(v)|`.
    Jc,
    /// Adamic/Adar: `Σ_w 1 / ln(deg w)`.
    Aa,
    /// Resource Allocation: `Σ_w 1 / deg w`.
    Ra,
    /// Preferential Attachment: `deg(u) · deg(v)` (no witnesses needed).
    Pa,
    /// Local-naive-Bayes CN: `|Γ(u) ∩ Γ(v)|·log s + Σ_w log R_w`.
    Bcn,
    /// Local-naive-Bayes AA: `Σ_w (log s + log R_w) / ln(deg w)`.
    Baa,
    /// Local-naive-Bayes RA: `Σ_w (log s + log R_w) / deg w`.
    Bra,
}

impl LocalKind {
    /// Every kind the kernel computes. A [`FusedCtx`] built with this
    /// list can score any fused metric — the serving query path builds
    /// one such context per snapshot version and scores single kinds out
    /// of it (bit-identical to a context built for that kind alone, since
    /// [`score_columns`] derives its accumulator needs from the requested
    /// kinds, not the built ones).
    pub const ALL: [LocalKind; 8] = [
        LocalKind::Cn,
        LocalKind::Jc,
        LocalKind::Aa,
        LocalKind::Ra,
        LocalKind::Pa,
        LocalKind::Bcn,
        LocalKind::Baa,
        LocalKind::Bra,
    ];

    /// True for the kinds deriving from the naive-Bayes witness weights
    /// (these force [`FusedCtx::build`] to compute the Bayes tables).
    pub fn is_bayes(self) -> bool {
        matches!(self, LocalKind::Bcn | LocalKind::Baa | LocalKind::Bra)
    }

    /// Looks up the advertised kinds of a metric batch: `Some` entry per
    /// metric the kernel can absorb, `None` for everything else.
    pub fn of_metrics(metrics: &[&dyn Metric]) -> Vec<Option<LocalKind>> {
        metrics.iter().map(|m| m.fused_kind()).collect()
    }
}

/// Which scatter accumulators a kind set requires.
#[derive(Clone, Copy, Debug, Default)]
struct Needs {
    cn: bool,
    aa: bool,
    ra: bool,
    blogr: bool,
    baa: bool,
    bra: bool,
}

impl Needs {
    fn of(kinds: &[LocalKind]) -> Self {
        let mut n = Needs::default();
        for &k in kinds {
            match k {
                LocalKind::Cn | LocalKind::Jc => n.cn = true,
                LocalKind::Aa => n.aa = true,
                LocalKind::Ra => n.ra = true,
                LocalKind::Pa => {}
                LocalKind::Bcn => {
                    n.cn = true;
                    n.blogr = true;
                }
                LocalKind::Baa => n.baa = true,
                LocalKind::Bra => n.bra = true,
            }
        }
        n
    }

    /// True when any accumulator is live, i.e. the witness walk must run
    /// (a PA-only batch skips the traversal entirely).
    fn walk(&self) -> bool {
        self.cn || self.aa || self.ra || self.blogr || self.baa || self.bra
    }
}

/// Per-snapshot naive-Bayes weight tables (built once per kernel context
/// when any Bayes kind is requested, instead of once per `score_pairs`
/// call per chunk as on the per-pair path).
struct BayesTables {
    log_s: f64,
    /// `log R_w` per node (the per-pair path's summand for BCN).
    log_r: Vec<f64>,
    /// `(log s + log R_w) / ln(deg w)` per node — BAA's exact summand.
    /// Entries for degree < 2 are non-finite but never consulted:
    /// witnesses always have degree ≥ 2.
    baa_w: Vec<f64>,
    /// `(log s + log R_w) / deg w` per node — BRA's exact summand.
    bra_w: Vec<f64>,
}

/// Read-only per-snapshot state for the kernel: the snapshot itself, its
/// cached degree tables, and (when a Bayes kind is requested) the
/// naive-Bayes weight tables. Build once, share across workers.
pub struct FusedCtx<'s> {
    snap: &'s Snapshot,
    tables: &'s DegreeTables,
    bayes: Option<BayesTables>,
}

impl<'s> FusedCtx<'s> {
    /// The snapshot this context was built on. Lets callers that thread a
    /// context separately from the snapshot (the targeted serving path)
    /// assert the two stayed in sync.
    pub fn snapshot(&self) -> &'s Snapshot {
        self.snap
    }

    /// Prepares the kernel context for `kinds` on `snap`. The degree
    /// tables come from the snapshot's [`Snapshot::degree_tables`] cache;
    /// Bayes tables are computed here iff a Bayes kind is present.
    pub fn build(snap: &'s Snapshot, kinds: &[LocalKind]) -> Self {
        let tables = snap.degree_tables();
        let bayes = if kinds.iter().any(|k| k.is_bayes()) {
            let ctx = BayesContext::build(snap);
            let n = snap.node_count();
            let mut baa_w = Vec::with_capacity(n);
            let mut bra_w = Vec::with_capacity(n);
            for w in 0..n {
                // Exactly the per-pair summands of BAA and BRA: same
                // log-space numerator, same divisor expressions.
                let num = ctx.log_s + ctx.log_r[w];
                baa_w.push(num / (snap.degree(w as NodeId) as f64).ln());
                bra_w.push(num / snap.degree(w as NodeId) as f64);
            }
            Some(BayesTables { log_s: ctx.log_s, log_r: ctx.log_r, baa_w, bra_w })
        } else {
            None
        };
        FusedCtx { snap, tables, bayes }
    }

    /// Derives one score for pair `(u, v)` whose accumulators live at
    /// `slot` in `scratch`. Mirrors the per-pair expressions exactly.
    fn derive(
        &self,
        kind: LocalKind,
        scratch: &FusedScratch,
        u: NodeId,
        v: NodeId,
        slot: usize,
    ) -> f64 {
        match kind {
            LocalKind::Cn => scratch.cn[slot] as f64,
            LocalKind::Jc => {
                let inter = scratch.cn[slot];
                let union = self.snap.degree(u) + self.snap.degree(v) - inter;
                if union == 0 {
                    0.0
                } else {
                    inter as f64 / union as f64
                }
            }
            LocalKind::Aa => scratch.aa[slot],
            LocalKind::Ra => scratch.ra[slot],
            LocalKind::Pa => (self.snap.degree(u) * self.snap.degree(v)) as f64,
            LocalKind::Bcn => {
                // linklens-allow(unwrap-in-lib): FusedCtx::build computes the Bayes tables whenever a Bayes kind is requested
                let b = self.bayes.as_ref().expect("Bayes kind scored without Bayes tables");
                scratch.cn[slot] as f64 * b.log_s + scratch.blogr[slot]
            }
            LocalKind::Baa => scratch.baa[slot],
            LocalKind::Bra => scratch.bra[slot],
        }
    }
}

/// Per-worker mutable state: an epoch-stamped target-marker array plus the
/// per-candidate scatter accumulators. One instance per worker, reused
/// across every chunk the worker claims — no per-source allocation.
pub struct FusedScratch {
    epoch: u32,
    /// `seen[x] == epoch` ⇔ `x` is a target of the current source run.
    seen: Vec<u32>,
    /// Valid iff `seen[x] == epoch`: `x`'s accumulator slot.
    slot: Vec<u32>,
    /// Slot of each pair in the current run (handles duplicate targets).
    pslot: Vec<u32>,
    cn: Vec<usize>,
    aa: Vec<f64>,
    ra: Vec<f64>,
    blogr: Vec<f64>,
    baa: Vec<f64>,
    bra: Vec<f64>,
}

impl FusedScratch {
    /// Scratch for a graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        FusedScratch {
            epoch: 0,
            seen: vec![0; n],
            slot: vec![0; n],
            pslot: Vec::new(),
            cn: Vec::new(),
            aa: Vec::new(),
            ra: Vec::new(),
            blogr: Vec::new(),
            baa: Vec::new(),
            bra: Vec::new(),
        }
    }

    /// Starts a new source run: bumps the epoch (O(1) clear of all target
    /// stamps) and hard-resets the stamp array on counter wraparound so a
    /// stale stamp from 2³² runs ago can never alias the current epoch.
    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.seen.fill(0);
            self.epoch = 1;
        }
        self.pslot.clear();
    }

    /// Sizes the live accumulators to `slots` zeroed entries.
    fn reset_acc(&mut self, slots: usize, needs: &Needs) {
        if needs.cn {
            self.cn.clear();
            self.cn.resize(slots, 0);
        }
        if needs.aa {
            self.aa.clear();
            self.aa.resize(slots, 0.0);
        }
        if needs.ra {
            self.ra.clear();
            self.ra.resize(slots, 0.0);
        }
        if needs.blogr {
            self.blogr.clear();
            self.blogr.resize(slots, 0.0);
        }
        if needs.baa {
            self.baa.clear();
            self.baa.resize(slots, 0.0);
        }
        if needs.bra {
            self.bra.clear();
            self.bra.resize(slots, 0.0);
        }
    }

    /// Accumulates witness `w`'s contribution into `slot` for every live
    /// accumulator. Called in ascending-`w` order, preserving the
    /// per-pair summation order bit-for-bit.
    #[inline]
    fn hit(&mut self, ctx: &FusedCtx<'_>, needs: &Needs, w: NodeId, slot: usize) {
        let wi = w as usize;
        if needs.cn {
            self.cn[slot] += 1;
        }
        if needs.aa {
            self.aa[slot] += ctx.tables.inv_ln_deg(w);
        }
        if needs.ra {
            self.ra[slot] += ctx.tables.inv_deg(w);
        }
        if let Some(b) = &ctx.bayes {
            if needs.blogr {
                self.blogr[slot] += b.log_r[wi];
            }
            if needs.baa {
                self.baa[slot] += b.baa_w[wi];
            }
            if needs.bra {
                self.bra[slot] += b.bra_w[wi];
            }
        }
    }
}

/// Scores `pairs` for every kind in `kinds` with one witness walk per
/// source run, returning one column per kind (aligned with `pairs`).
///
/// Pairs are processed in runs of equal source endpoint (candidate lists
/// are canonically sorted, so runs are maximal); within a run the targets
/// are stamped, `Γ(u)`'s CSR rows are walked once, and contributions are
/// scattered into per-target slots. Works for *any* pair list — targets
/// need not be two-hop, unconnected, or even distinct — and matches the
/// per-pair path bit-for-bit (see the module docs for the argument).
pub fn score_columns(
    ctx: &FusedCtx<'_>,
    scratch: &mut FusedScratch,
    pairs: &[(NodeId, NodeId)],
    kinds: &[LocalKind],
) -> Vec<Vec<f64>> {
    let needs = Needs::of(kinds);
    let mut cols: Vec<Vec<f64>> = kinds.iter().map(|_| Vec::with_capacity(pairs.len())).collect();
    let mut i = 0;
    while i < pairs.len() {
        let u = pairs[i].0;
        let mut j = i;
        while j < pairs.len() && pairs[j].0 == u {
            j += 1;
        }
        let run = &pairs[i..j];
        scratch.begin();
        let e = scratch.epoch;
        let mut slots = 0u32;
        for &(_, v) in run {
            let vi = v as usize;
            if scratch.seen[vi] != e {
                scratch.seen[vi] = e;
                scratch.slot[vi] = slots;
                slots += 1;
            }
            scratch.pslot.push(scratch.slot[vi]);
        }
        scratch.reset_acc(slots as usize, &needs);
        if needs.walk() {
            for &w in ctx.snap.neighbors(u) {
                for &v in ctx.snap.neighbors(w) {
                    if scratch.seen[v as usize] == e {
                        let s = scratch.slot[v as usize] as usize;
                        scratch.hit(ctx, &needs, w, s);
                    }
                }
            }
        }
        for (pi, &(_, v)) in run.iter().enumerate() {
            let s = scratch.pslot[pi] as usize;
            for (ki, &kind) in kinds.iter().enumerate() {
                cols[ki].push(ctx.derive(kind, scratch, u, v, s));
            }
        }
        i = j;
    }
    cols
}

/// Enumerates the two-hop candidate pairs of `snap` *and* scores every
/// kind in `kinds` for each, in the same CSR pass — the `TwoHop` policy
/// never materializes the pair list separately. Returns the pairs in
/// [`osn_graph::traversal::two_hop_pairs`] order (bit-identical for every
/// `threads` value) plus one score column per kind.
///
/// Enumeration goes through the shared [`TwoHopScan`] walk — the same
/// helper [`CandidateSet::build`](crate::candidates::CandidateSet::build)
/// uses — so the fused pair set cannot drift from the enumerate-only path.
pub fn enumerate_and_score_t(
    snap: &Snapshot,
    kinds: &[LocalKind],
    threads: usize,
) -> (Vec<(NodeId, NodeId)>, Vec<Vec<f64>>) {
    enumerate_and_score_impl(snap, kinds, threads, None)
}

/// [`enumerate_and_score_t`] with §6.2 pruning pushed into the shared
/// scan ([`TwoHopScan::scan_pruned`]): doomed sources skip their frontier
/// walk, doomed targets never occupy accumulator slots, and the CN-gap
/// verdict falls out of the walk's own witness arrivals. Surviving pairs
/// get *bit-identical* scores to the unpruned kernel — every witness of a
/// surviving target still contributes, in the same ascending-`w` order —
/// and the pair list equals
/// [`CandidateSet::build_pruned`](crate::candidates::CandidateSet::build_pruned)
/// under the `TwoHop` policy, which uses the same walk.
pub fn enumerate_and_score_pruned_t(
    snap: &Snapshot,
    kinds: &[LocalKind],
    act: &NodeActivity,
    spec: &PruneSpec,
    threads: usize,
) -> (Vec<(NodeId, NodeId)>, Vec<Vec<f64>>) {
    enumerate_and_score_impl(snap, kinds, threads, Some((act, spec)))
}

fn enumerate_and_score_impl(
    snap: &Snapshot,
    kinds: &[LocalKind],
    threads: usize,
    prune: Option<(&NodeActivity, &PruneSpec)>,
) -> (Vec<(NodeId, NodeId)>, Vec<Vec<f64>>) {
    let ctx = FusedCtx::build(snap, kinds);
    let n = snap.node_count();
    let threads = threads.clamp(1, n.max(1));
    let run_block = |scan: &mut TwoHopScan,
                     scratch: &mut FusedScratch,
                     sources: std::ops::Range<usize>|
     -> (Vec<(NodeId, NodeId)>, Vec<Vec<f64>>) {
        let needs = Needs::of(kinds);
        let mut pairs = Vec::new();
        let mut cols: Vec<Vec<f64>> = kinds.iter().map(|_| Vec::new()).collect();
        for u in sources {
            let u = u as NodeId;
            // One walk enumerates candidates AND accumulates witnesses:
            // each hit arrives in ascending-w order with a dense slot.
            // The pruned and unpruned scans share this callback, so a
            // surviving slot accumulates exactly the unpruned sums.
            let on_hit = |scratch: &mut FusedScratch, w: NodeId, slot: usize, first: bool| {
                if first {
                    if needs.cn {
                        scratch.cn.push(0);
                    }
                    if needs.aa {
                        scratch.aa.push(0.0);
                    }
                    if needs.ra {
                        scratch.ra.push(0.0);
                    }
                    if needs.blogr {
                        scratch.blogr.push(0.0);
                    }
                    if needs.baa {
                        scratch.baa.push(0.0);
                    }
                    if needs.bra {
                        scratch.bra.push(0.0);
                    }
                }
                scratch.hit(&ctx, &needs, w, slot);
            };
            match prune {
                None => {
                    scan.scan(snap, u, |w, _v, slot, first| on_hit(scratch, w, slot, first));
                    for (slot, &v) in scan.last_candidates().iter().enumerate() {
                        pairs.push((u, v));
                        for (ki, &kind) in kinds.iter().enumerate() {
                            cols[ki].push(ctx.derive(kind, scratch, u, v, slot));
                        }
                    }
                }
                Some((act, spec)) => {
                    scan.scan_pruned(snap, u, act, spec, |w, _v, slot, first| {
                        on_hit(scratch, w, slot, first)
                    });
                    for (slot, v) in scan.last_survivors() {
                        pairs.push((u, v));
                        for (ki, &kind) in kinds.iter().enumerate() {
                            cols[ki].push(ctx.derive(kind, scratch, u, v, slot));
                        }
                    }
                }
            }
            scratch.cn.clear();
            scratch.aa.clear();
            scratch.ra.clear();
            scratch.blogr.clear();
            scratch.baa.clear();
            scratch.bra.clear();
        }
        (pairs, cols)
    };
    let parts = if threads == 1 {
        vec![run_block(&mut TwoHopScan::new(n), &mut FusedScratch::new(n), 0..n)]
    } else {
        let blocks = par::block_ranges(n, threads * 8);
        par::run_indexed_init(
            blocks.len(),
            threads,
            || (TwoHopScan::new(n), FusedScratch::new(n)),
            |(scan, scratch), b| run_block(scan, scratch, blocks[b].clone()),
        )
    };
    let mut pairs = Vec::new();
    let mut cols: Vec<Vec<f64>> = kinds.iter().map(|_| Vec::new()).collect();
    for (p, c) in parts {
        pairs.extend(p);
        for (ki, col) in c.into_iter().enumerate() {
            cols[ki].extend(col);
        }
    }
    (pairs, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateSet;
    use crate::traits::CandidatePolicy;

    const ALL_KINDS: [LocalKind; 8] = [
        LocalKind::Cn,
        LocalKind::Jc,
        LocalKind::Aa,
        LocalKind::Ra,
        LocalKind::Pa,
        LocalKind::Bcn,
        LocalKind::Baa,
        LocalKind::Bra,
    ];

    /// Two bridged triangles plus a pendant path (the exec.rs fixture).
    fn fixture() -> Snapshot {
        Snapshot::from_edges(
            8,
            &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5), (5, 6), (6, 7)],
        )
    }

    fn kind_metric(kind: LocalKind) -> Box<dyn Metric> {
        let name = match kind {
            LocalKind::Cn => "CN",
            LocalKind::Jc => "JC",
            LocalKind::Aa => "AA",
            LocalKind::Ra => "RA",
            LocalKind::Pa => "PA",
            LocalKind::Bcn => "BCN",
            LocalKind::Baa => "BAA",
            LocalKind::Bra => "BRA",
        };
        crate::metric_by_name(name).unwrap()
    }

    #[test]
    fn fused_columns_match_per_pair_scoring() {
        let snap = fixture();
        let cands = CandidateSet::build(&snap, CandidatePolicy::ThreeHop, 0);
        let ctx = FusedCtx::build(&snap, &ALL_KINDS);
        let mut scratch = FusedScratch::new(snap.node_count());
        let cols = score_columns(&ctx, &mut scratch, cands.pairs(), &ALL_KINDS);
        for (ki, &kind) in ALL_KINDS.iter().enumerate() {
            let m = kind_metric(kind);
            assert_eq!(cols[ki], m.score_pairs(&snap, cands.pairs()), "{kind:?}");
        }
    }

    #[test]
    fn fused_handles_duplicate_and_noncanonical_pairs() {
        let snap = fixture();
        // Duplicates, a reversed pair, and an existing edge — the kernel
        // must score whatever it is handed, like the per-pair path does.
        let pairs = [(0u32, 4u32), (0, 4), (4, 0), (0, 1), (1, 7)];
        let ctx = FusedCtx::build(&snap, &ALL_KINDS);
        let mut scratch = FusedScratch::new(snap.node_count());
        let cols = score_columns(&ctx, &mut scratch, &pairs, &ALL_KINDS);
        for (ki, &kind) in ALL_KINDS.iter().enumerate() {
            let m = kind_metric(kind);
            assert_eq!(cols[ki], m.score_pairs(&snap, &pairs), "{kind:?}");
        }
    }

    #[test]
    fn scratch_epoch_wraparound_resets_stamps() {
        let snap = fixture();
        let pairs = [(1u32, 3u32), (1, 4)];
        let kinds = [LocalKind::Cn];
        let ctx = FusedCtx::build(&snap, &kinds);
        let mut scratch = FusedScratch::new(snap.node_count());
        let baseline = score_columns(&ctx, &mut scratch, &pairs, &kinds);
        // Leave stale stamps behind, then force the next two runs across
        // the wraparound boundary: both must still score correctly.
        scratch.epoch = u32::MAX - 1;
        assert_eq!(score_columns(&ctx, &mut scratch, &pairs, &kinds), baseline, "at u32::MAX");
        assert_eq!(scratch.epoch, u32::MAX);
        assert_eq!(score_columns(&ctx, &mut scratch, &pairs, &kinds), baseline, "wrapped");
        assert_eq!(scratch.epoch, 1, "wraparound restarts the epoch at 1");
        assert!(scratch.seen.iter().all(|&e| e <= 1), "stamps hard-reset on wrap");
        assert_eq!(score_columns(&ctx, &mut scratch, &pairs, &kinds), baseline, "post-wrap");
    }

    #[test]
    fn enumerate_and_score_matches_candidate_set() {
        let snap = fixture();
        let cands = CandidateSet::build(&snap, CandidatePolicy::TwoHop, 0);
        for threads in [1, 2, 4] {
            let (pairs, cols) = enumerate_and_score_t(&snap, &ALL_KINDS, threads);
            assert_eq!(pairs, cands.pairs(), "threads={threads}");
            for (ki, &kind) in ALL_KINDS.iter().enumerate() {
                let m = kind_metric(kind);
                assert_eq!(cols[ki], m.score_pairs(&snap, &pairs), "{kind:?} threads={threads}");
            }
        }
    }

    #[test]
    fn pruned_enumeration_scores_surviving_pairs_bit_identically() {
        use osn_graph::temporal::TemporalGraph;
        let n = 30u32;
        let mut g = TemporalGraph::new();
        for _ in 0..n {
            g.add_node(0);
        }
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push(osn_graph::canonical(i, (i + 1) % n));
            if i % 4 == 0 {
                edges.push(osn_graph::canonical(i, (i + 9) % n));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let mut timed: Vec<(NodeId, NodeId, osn_graph::Timestamp)> = edges
            .into_iter()
            .map(|(a, b)| (a, b, ((a * 13 + b * 7) % n) as osn_graph::Timestamp * osn_graph::DAY))
            .collect();
        timed.sort_by_key(|&(_, _, t)| t);
        for (a, b, t) in timed {
            g.add_edge(a, b, t);
        }
        let snap = Snapshot::up_to(&g, g.edge_count());
        let spec = PruneSpec {
            active_idle_days: 12.0,
            inactive_idle_days: 22.0,
            window_days: 7.0,
            min_recent_edges: 1,
            cn_gap_days: 15.0,
        };
        let act = NodeActivity::build(&snap, spec.window());
        let (full_pairs, _) = enumerate_and_score_t(&snap, &ALL_KINDS, 1);
        for threads in [1, 2, 4] {
            let (pairs, cols) =
                enumerate_and_score_pruned_t(&snap, &ALL_KINDS, &act, &spec, threads);
            assert!(!pairs.is_empty() && pairs.len() < full_pairs.len(), "fixture must prune");
            for (ki, &kind) in ALL_KINDS.iter().enumerate() {
                let m = kind_metric(kind);
                assert_eq!(cols[ki], m.score_pairs(&snap, &pairs), "{kind:?} threads={threads}");
            }
        }
    }

    #[test]
    fn pa_only_batch_skips_the_walk() {
        // Needs::walk() is false for PA alone; derive must not touch the
        // (empty) accumulators.
        let snap = fixture();
        let pairs = [(0u32, 4u32), (1, 7)];
        let ctx = FusedCtx::build(&snap, &[LocalKind::Pa]);
        let mut scratch = FusedScratch::new(snap.node_count());
        let cols = score_columns(&ctx, &mut scratch, &pairs, &[LocalKind::Pa]);
        let m = kind_metric(LocalKind::Pa);
        assert_eq!(cols[0], m.score_pairs(&snap, &pairs));
        assert!(scratch.cn.is_empty());
    }
}
