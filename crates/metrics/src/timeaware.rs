//! Time-aware similarity metrics — the "assign more weight to new links"
//! family the paper cites as related work (Tylenda et al. \[40\], Sharan &
//! Neville \[37\]) and compares its filters against in §6.3.
//!
//! Each metric is a recency-weighted variant of a Table 3 neighborhood
//! metric: the contribution of a common neighbor `w` decays exponentially
//! with the age of the *newer* of the two edges `(u,w)`, `(v,w)`:
//!
//! `weight(w) = exp(−age(w) / τ)` with `age(w) = t_snap − max(t_uw, t_vw)`.
//!
//! With `τ → ∞` the metrics reduce exactly to their static counterparts
//! (tested below). These serve two roles in LinkLens: an implementation of
//! the cited alternative temporal approach, and an ablation point between
//! "static metric" and "static metric + temporal filter".

use crate::traits::{CandidatePolicy, Metric, ScoreContract};
use osn_graph::snapshot::Snapshot;
use osn_graph::{NodeId, Timestamp, DAY};

/// Exponential recency weight for a pair's common neighbor given the
/// snapshot time, the two edge times, and the decay constant in days.
#[inline]
fn recency_weight(snap_time: Timestamp, t_uw: Timestamp, t_vw: Timestamp, tau_days: f64) -> f64 {
    let age_days = (snap_time - t_uw.max(t_vw)) as f64 / DAY as f64;
    (-age_days / tau_days).exp()
}

/// Walks the common neighbors of `(u, v)` with their edge times, summing
/// `per_witness(w, weight)`.
fn weighted_cn_sum<F: FnMut(NodeId, f64) -> f64>(
    snap: &Snapshot,
    u: NodeId,
    v: NodeId,
    tau_days: f64,
    mut per_witness: F,
) -> f64 {
    let (nu, tu) = (snap.neighbors(u), snap.neighbor_times(u));
    let (nv, tv) = (snap.neighbors(v), snap.neighbor_times(v));
    let (mut i, mut j) = (0usize, 0usize);
    let mut acc = 0.0;
    while i < nu.len() && j < nv.len() {
        match nu[i].cmp(&nv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let w = nu[i];
                let weight = recency_weight(snap.time(), tu[i], tv[j], tau_days);
                acc += per_witness(w, weight);
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

/// Recency-weighted Common Neighbors: `Σ_w exp(−age(w)/τ)`.
#[derive(Clone, Copy, Debug)]
pub struct RecencyCommonNeighbors {
    /// Decay constant τ in days.
    pub tau_days: f64,
}

impl Default for RecencyCommonNeighbors {
    fn default() -> Self {
        RecencyCommonNeighbors { tau_days: 14.0 }
    }
}

impl Metric for RecencyCommonNeighbors {
    fn name(&self) -> &'static str {
        "tCN"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::TwoHop
    }

    fn score_contract(&self) -> ScoreContract {
        ScoreContract::FiniteNonNegative
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        pairs.iter().map(|&(u, v)| weighted_cn_sum(snap, u, v, self.tau_days, |_, w| w)).collect()
    }
}

/// Recency-weighted Adamic/Adar: `Σ_w exp(−age(w)/τ) / log(deg w)`.
#[derive(Clone, Copy, Debug)]
pub struct RecencyAdamicAdar {
    /// Decay constant τ in days.
    pub tau_days: f64,
}

impl Default for RecencyAdamicAdar {
    fn default() -> Self {
        RecencyAdamicAdar { tau_days: 14.0 }
    }
}

impl Metric for RecencyAdamicAdar {
    fn name(&self) -> &'static str {
        "tAA"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::TwoHop
    }

    fn score_contract(&self) -> ScoreContract {
        ScoreContract::FiniteNonNegative
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        pairs
            .iter()
            .map(|&(u, v)| {
                weighted_cn_sum(snap, u, v, self.tau_days, |w, weight| {
                    weight / (snap.degree(w) as f64).ln()
                })
            })
            .collect()
    }
}

/// Recency-weighted Resource Allocation: `Σ_w exp(−age(w)/τ) / deg w`.
#[derive(Clone, Copy, Debug)]
pub struct RecencyResourceAllocation {
    /// Decay constant τ in days.
    pub tau_days: f64,
}

impl Default for RecencyResourceAllocation {
    fn default() -> Self {
        RecencyResourceAllocation { tau_days: 14.0 }
    }
}

impl Metric for RecencyResourceAllocation {
    fn name(&self) -> &'static str {
        "tRA"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::TwoHop
    }

    fn score_contract(&self) -> ScoreContract {
        ScoreContract::FiniteNonNegative
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        pairs
            .iter()
            .map(|&(u, v)| {
                weighted_cn_sum(snap, u, v, self.tau_days, |w, weight| {
                    weight / snap.degree(w) as f64
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::{AdamicAdar, CommonNeighbors, ResourceAllocation};
    use osn_graph::temporal::TemporalGraph;

    /// Pair (0,1) with two witnesses: node 2 via fresh edges, node 3 via
    /// stale edges.
    fn fixture() -> Snapshot {
        let mut g = TemporalGraph::new();
        for _ in 0..4 {
            g.add_node(0);
        }
        g.add_edge(0, 3, DAY); // stale witness edges (day 1)
        g.add_edge(1, 3, DAY + 1);
        g.add_edge(0, 2, 30 * DAY); // fresh witness edges (day 30)
        g.add_edge(1, 2, 30 * DAY + 1);
        Snapshot::up_to(&g, 4)
    }

    #[test]
    fn fresh_witnesses_weigh_more() {
        let s = fixture();
        // Remove the fresh witness: score should drop by nearly 1 (weight
        // ≈ 1); removing the stale witness drops almost nothing.
        let tcn = RecencyCommonNeighbors { tau_days: 5.0 };
        let full = tcn.score_pairs(&s, &[(0, 1)])[0];
        assert!(full > 0.99 && full < 1.1, "fresh≈1 + stale≈0, got {full}");
    }

    #[test]
    fn large_tau_recovers_static_metrics() {
        let s = fixture();
        let pairs = [(0u32, 1u32)];
        let tau = 1e12;
        let tcn = RecencyCommonNeighbors { tau_days: tau }.score_pairs(&s, &pairs)[0];
        let cn = CommonNeighbors.score_pairs(&s, &pairs)[0];
        assert!((tcn - cn).abs() < 1e-6, "tCN {tcn} vs CN {cn}");
        let taa = RecencyAdamicAdar { tau_days: tau }.score_pairs(&s, &pairs)[0];
        let aa = AdamicAdar.score_pairs(&s, &pairs)[0];
        assert!((taa - aa).abs() < 1e-6);
        let tra = RecencyResourceAllocation { tau_days: tau }.score_pairs(&s, &pairs)[0];
        let ra = ResourceAllocation.score_pairs(&s, &pairs)[0];
        assert!((tra - ra).abs() < 1e-6);
    }

    #[test]
    fn ranks_recently_closed_wedges_first() {
        // Two candidate pairs with one witness each: (0,1) has only a stale
        // witness in this graph; (4,5) a fresh one.
        let mut g = TemporalGraph::new();
        for _ in 0..6 {
            g.add_node(0);
        }
        g.add_edge(0, 2, DAY);
        g.add_edge(1, 2, DAY + 1);
        g.add_edge(4, 3, 30 * DAY);
        g.add_edge(5, 3, 30 * DAY + 1);
        let s = Snapshot::up_to(&g, 4);
        let tcn = RecencyCommonNeighbors { tau_days: 5.0 };
        let scores = tcn.score_pairs(&s, &[(0, 1), (4, 5)]);
        assert!(scores[1] > scores[0], "fresh wedge should outrank stale: {scores:?}");
        // The static metric ties them.
        let cn = CommonNeighbors.score_pairs(&s, &[(0, 1), (4, 5)]);
        assert_eq!(cn[0], cn[1]);
    }

    #[test]
    fn weights_bounded_by_static_score() {
        let s = fixture();
        let pairs = [(0u32, 1u32)];
        for tau in [1.0, 5.0, 50.0] {
            let t = RecencyCommonNeighbors { tau_days: tau }.score_pairs(&s, &pairs)[0];
            let stat = CommonNeighbors.score_pairs(&s, &pairs)[0];
            assert!(t <= stat + 1e-12);
            assert!(t >= 0.0);
        }
    }
}
