//! Shared candidate-pair enumeration.
//!
//! Scoring all `O(|V|²)` unconnected pairs is exactly what the paper calls
//! out as infeasible (88 days of feature computation for one Renren
//! snapshot, §5). Every metric's *top-k* prediction, however, only needs
//! pairs the metric can rank above the floor:
//!
//! * neighborhood metrics are zero beyond 2 hops;
//! * LP / SP / walk / Katz scores decay so fast with distance that the
//!   top-k always sits within 3 hops (LP is *identically* zero beyond 3);
//! * PA and Rescal can rank distant pairs, but their top scores involve
//!   high-degree nodes — so the candidate set adds every pair touching the
//!   top-degree nodes.
//!
//! [`CandidateSet::build`] materializes the union once per snapshot and is
//! shared by all metrics under evaluation. This mirrors the paper's own
//! approximation strategy (its PA implementation "only considers top-K
//! node pairs", §3.2) and is documented as such in DESIGN.md.

use crate::traits::CandidatePolicy;
use osn_graph::snapshot::Snapshot;
use osn_graph::{traversal, NodeId};

/// A deduplicated, canonically ordered batch of unconnected node pairs.
#[derive(Clone, Debug)]
pub struct CandidateSet {
    pairs: Vec<(NodeId, NodeId)>,
    policy: CandidatePolicy,
}

impl CandidateSet {
    /// Builds the candidate set for `policy` on `snap`.
    ///
    /// * `TwoHop` — unconnected distance-2 pairs.
    /// * `ThreeHop` — unconnected pairs at distance 2 or 3.
    /// * `Global` — `ThreeHop` plus all unconnected pairs touching the
    ///   `top_degree` highest-degree nodes.
    ///
    /// `TwoHop` enumeration and the fused scoring kernel's
    /// enumerate-and-score pass ([`crate::fused::enumerate_and_score_t`])
    /// both walk [`osn_graph::traversal::TwoHopScan`], so the two pair
    /// sets are the same list by construction, not by coincidence.
    pub fn build(snap: &Snapshot, policy: CandidatePolicy, top_degree: usize) -> Self {
        let mut pairs = match policy {
            CandidatePolicy::TwoHop => traversal::two_hop_pairs(snap),
            CandidatePolicy::ThreeHop | CandidatePolicy::Global => traversal::pairs_within(snap, 3),
        };
        if policy == CandidatePolicy::Global {
            let n = snap.node_count();
            let mut by_degree: Vec<NodeId> = (0..n as NodeId).collect();
            by_degree.sort_unstable_by_key(|&u| std::cmp::Reverse(snap.degree(u)));
            let top = &by_degree[..top_degree.min(n)];
            for &h in top {
                // Neighbor lists are sorted ascending, so a single merge
                // pass over `0..n` finds every non-neighbor in
                // O(n + deg h) instead of a per-pair adjacency probe.
                let mut adj = snap.neighbors(h).iter().copied().peekable();
                for v in 0..n as NodeId {
                    while adj.next_if(|&a| a < v).is_some() {}
                    if adj.peek() == Some(&v) {
                        adj.next();
                        continue;
                    }
                    if v != h {
                        pairs.push(osn_graph::canonical(h, v));
                    }
                }
            }
            pairs.sort_unstable();
            pairs.dedup();
        }
        CandidateSet { pairs, policy }
    }

    /// Like [`build`](Self::build) but caps the candidate count: when the
    /// enumeration exceeds `max_pairs`, a deterministic stride subsample is
    /// kept. This is a documented approximation for supernode-heavy
    /// snapshots whose 2-hop pair count explodes quadratically (the paper
    /// hit the same wall and restricted PA to top-K pairs, §3.2).
    pub fn build_capped(
        snap: &Snapshot,
        policy: CandidatePolicy,
        top_degree: usize,
        max_pairs: usize,
    ) -> Self {
        let mut set = Self::build(snap, policy, top_degree);
        if max_pairs > 0 && set.pairs.len() > max_pairs {
            let stride = set.pairs.len().div_ceil(max_pairs);
            set.pairs = set.pairs.iter().copied().step_by(stride).collect();
        }
        set
    }

    /// Builds from an explicit pair list (used by the sampled
    /// classification pipeline, where the universe is all pairs among the
    /// sampled nodes).
    pub fn from_pairs(pairs: Vec<(NodeId, NodeId)>, policy: CandidatePolicy) -> Self {
        debug_assert!(pairs.iter().all(|&(u, v)| u < v), "pairs must be canonical");
        CandidateSet { pairs, policy }
    }

    /// The candidate pairs, canonical and deduplicated.
    pub fn pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no candidates exist.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The policy this set was built for.
    pub fn policy(&self) -> CandidatePolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0-1-2-3-4 plus hub 5 connected to 0.
    fn fixture() -> Snapshot {
        Snapshot::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 5)])
    }

    #[test]
    fn two_hop_set() {
        let s = fixture();
        let c = CandidateSet::build(&s, CandidatePolicy::TwoHop, 0);
        assert!(c.pairs().contains(&(0, 2)));
        assert!(c.pairs().contains(&(1, 5)));
        assert!(!c.pairs().contains(&(0, 3)), "distance 3 excluded");
    }

    #[test]
    fn three_hop_set_is_superset() {
        let s = fixture();
        let two = CandidateSet::build(&s, CandidatePolicy::TwoHop, 0);
        let three = CandidateSet::build(&s, CandidatePolicy::ThreeHop, 0);
        assert!(three.len() > two.len());
        for p in two.pairs() {
            assert!(three.pairs().contains(p));
        }
        assert!(three.pairs().contains(&(0, 3)));
    }

    #[test]
    fn global_adds_hub_pairs() {
        let s = fixture();
        // Node 2 has degree 2; take top-1 by degree. Nodes 0..3 have degrees
        // 2,2,2,2 — ties break by id, so hub = node 0.
        let g = CandidateSet::build(&s, CandidatePolicy::Global, 1);
        // Pair (0,4) is at distance 4: only reachable via the Global policy.
        assert!(g.pairs().contains(&(0, 4)));
    }

    #[test]
    fn global_set_is_deduplicated_and_sorted() {
        let s = fixture();
        let g = CandidateSet::build(&s, CandidatePolicy::Global, 3);
        let mut sorted = g.pairs().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), g.len(), "duplicates survived");
        assert!(g.pairs().iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn fused_enumeration_cannot_drift_from_two_hop_build() {
        // Ring + chords: enough structure for multi-witness candidates.
        let n = 30u32;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push(osn_graph::canonical(i, (i + 1) % n));
            if i % 4 == 0 {
                edges.push(osn_graph::canonical(i, (i + 9) % n));
            }
        }
        let s = Snapshot::from_edges(n as usize, &edges);
        let built = CandidateSet::build(&s, CandidatePolicy::TwoHop, 0);
        for threads in [1, 3] {
            let (pairs, _) =
                crate::fused::enumerate_and_score_t(&s, &[crate::fused::LocalKind::Cn], threads);
            assert_eq!(pairs, built.pairs(), "threads={threads}");
        }
    }

    #[test]
    fn no_existing_edges_in_candidates() {
        let s = fixture();
        for policy in [CandidatePolicy::TwoHop, CandidatePolicy::ThreeHop, CandidatePolicy::Global]
        {
            let c = CandidateSet::build(&s, policy, 2);
            for &(u, v) in c.pairs() {
                assert!(!s.has_edge(u, v), "{policy:?} contains existing edge ({u},{v})");
            }
        }
    }
}
