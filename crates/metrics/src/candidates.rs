//! Shared candidate-pair enumeration.
//!
//! Scoring all `O(|V|²)` unconnected pairs is exactly what the paper calls
//! out as infeasible (88 days of feature computation for one Renren
//! snapshot, §5). Every metric's *top-k* prediction, however, only needs
//! pairs the metric can rank above the floor:
//!
//! * neighborhood metrics are zero beyond 2 hops;
//! * LP / SP / walk / Katz scores decay so fast with distance that the
//!   top-k always sits within 3 hops (LP is *identically* zero beyond 3);
//! * PA and Rescal can rank distant pairs, but their top scores involve
//!   high-degree nodes — so the candidate set adds every pair touching the
//!   top-degree nodes.
//!
//! [`CandidateSet::build`] materializes the union once per snapshot and is
//! shared by all metrics under evaluation. This mirrors the paper's own
//! approximation strategy (its PA implementation "only considers top-K
//! node pairs", §3.2) and is documented as such in DESIGN.md.

use crate::traits::CandidatePolicy;
use osn_graph::activity::{NodeActivity, PruneSpec};
use osn_graph::snapshot::Snapshot;
use osn_graph::{traversal, NodeId};

/// Optional §6.2 pruning context threaded through the candidate builders:
/// `Some((activity, spec))` pushes the Table 7 criteria into enumeration
/// itself (doomed sources never walk, doomed targets drop at discovery),
/// `None` enumerates the full policy universe.
pub type Prune<'a> = Option<(&'a NodeActivity, &'a PruneSpec)>;

/// A deduplicated, canonically ordered batch of unconnected node pairs.
#[derive(Clone, Debug)]
pub struct CandidateSet {
    pairs: Vec<(NodeId, NodeId)>,
    policy: CandidatePolicy,
}

impl CandidateSet {
    /// Builds the candidate set for `policy` on `snap`.
    ///
    /// * `TwoHop` — unconnected distance-2 pairs.
    /// * `ThreeHop` — unconnected pairs at distance 2 or 3.
    /// * `Global` — `ThreeHop` plus all unconnected pairs touching the
    ///   `top_degree` highest-degree nodes.
    ///
    /// `TwoHop` enumeration and the fused scoring kernel's
    /// enumerate-and-score pass ([`crate::fused::enumerate_and_score_t`])
    /// both walk [`osn_graph::traversal::TwoHopScan`], so the two pair
    /// sets are the same list by construction, not by coincidence.
    pub fn build(snap: &Snapshot, policy: CandidatePolicy, top_degree: usize) -> Self {
        Self::build_pruned(snap, policy, top_degree, None)
    }

    /// [`build`](Self::build) with optional §6.2 pruning pushed into the
    /// enumeration walks themselves. With `Some` pruning the result equals
    /// post-hoc Table 7 filtering of the unpruned set — same pairs, same
    /// order (property-tested in `linklens-core`) — but rejected pairs are
    /// never materialized, scored, or even slot-assigned.
    pub fn build_pruned(
        snap: &Snapshot,
        policy: CandidatePolicy,
        top_degree: usize,
        prune: Prune<'_>,
    ) -> Self {
        match policy {
            CandidatePolicy::TwoHop => {
                let pairs = match prune {
                    None => traversal::two_hop_pairs(snap),
                    Some((act, spec)) => traversal::two_hop_pairs_pruned_t(
                        snap,
                        act,
                        spec,
                        osn_graph::par::max_threads(),
                    ),
                };
                CandidateSet { pairs, policy }
            }
            CandidatePolicy::ThreeHop => Self::three_hop_from_base(Self::within3_base(snap, prune)),
            CandidatePolicy::Global => {
                Self::global_from_base(snap, Self::within3_base(snap, prune), top_degree, prune)
            }
        }
    }

    /// The distance-≤3 pair enumeration shared by the `ThreeHop` and
    /// `Global` policies. Framework sweeps evaluating both policies build
    /// this once and feed it to [`three_hop_from_base`](Self::three_hop_from_base)
    /// and [`global_from_base`](Self::global_from_base), instead of paying
    /// the bounded-BFS twice per snapshot.
    pub fn within3_base(snap: &Snapshot, prune: Prune<'_>) -> Vec<(NodeId, NodeId)> {
        match prune {
            None => traversal::pairs_within(snap, 3),
            Some((act, spec)) => {
                traversal::pairs_within_pruned_t(snap, 3, act, spec, osn_graph::par::max_threads())
            }
        }
    }

    /// Wraps a [`within3_base`](Self::within3_base) enumeration as the
    /// `ThreeHop` candidate set (the base already is that set).
    pub fn three_hop_from_base(base: Vec<(NodeId, NodeId)>) -> Self {
        CandidateSet { pairs: base, policy: CandidatePolicy::ThreeHop }
    }

    /// Extends a [`within3_base`](Self::within3_base) enumeration with the
    /// `Global` policy's top-degree hub fan-out, then sorts and dedups.
    /// Hub pairs honor the same pruning spec as the base so the combined
    /// set still equals post-hoc filtering of the unpruned build.
    pub fn global_from_base(
        snap: &Snapshot,
        mut pairs: Vec<(NodeId, NodeId)>,
        top_degree: usize,
        prune: Prune<'_>,
    ) -> Self {
        let n = snap.node_count();
        let mut by_degree: Vec<NodeId> = (0..n as NodeId).collect();
        by_degree.sort_unstable_by_key(|&u| std::cmp::Reverse(snap.degree(u)));
        let top = &by_degree[..top_degree.min(n)];
        for &h in top {
            // Neighbor lists are sorted ascending, so a single merge
            // pass over `0..n` finds every non-neighbor in
            // O(n + deg h) instead of a per-pair adjacency probe.
            let mut adj = snap.neighbors(h).iter().copied().peekable();
            for v in 0..n as NodeId {
                while adj.next_if(|&a| a < v).is_some() {}
                if adj.peek() == Some(&v) {
                    adj.next();
                    continue;
                }
                if v != h {
                    let (a, b) = osn_graph::canonical(h, v);
                    let keep = match prune {
                        None => true,
                        Some((act, spec)) => spec.pair_passes(snap, act, a, b),
                    };
                    if keep {
                        pairs.push((a, b));
                    }
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        CandidateSet { pairs, policy: CandidatePolicy::Global }
    }

    /// Like [`build`](Self::build) but caps the candidate count: when the
    /// enumeration exceeds `max_pairs`, a deterministic stride subsample is
    /// kept. This is a documented approximation for supernode-heavy
    /// snapshots whose 2-hop pair count explodes quadratically (the paper
    /// hit the same wall and restricted PA to top-K pairs, §3.2).
    pub fn build_capped(
        snap: &Snapshot,
        policy: CandidatePolicy,
        top_degree: usize,
        max_pairs: usize,
    ) -> Self {
        Self::build(snap, policy, top_degree).capped(max_pairs)
    }

    /// [`build_capped`](Self::build_capped) with pruning pushed into
    /// enumeration. The cap applies *after* pruning: rejected pairs never
    /// crowd surviving ones out of the subsample (the post-hoc order —
    /// cap, then filter — loses real candidates to the stride whenever
    /// the cap binds).
    pub fn build_capped_pruned(
        snap: &Snapshot,
        policy: CandidatePolicy,
        top_degree: usize,
        max_pairs: usize,
        prune: Prune<'_>,
    ) -> Self {
        Self::build_pruned(snap, policy, top_degree, prune).capped(max_pairs)
    }

    /// Applies the deterministic stride cap (`max_pairs = 0` ⇒ uncapped).
    pub fn capped(mut self, max_pairs: usize) -> Self {
        if max_pairs > 0 && self.pairs.len() > max_pairs {
            let stride = self.pairs.len().div_ceil(max_pairs);
            self.pairs = self.pairs.iter().copied().step_by(stride).collect();
        }
        self
    }

    /// Builds from an explicit pair list (used by the sampled
    /// classification pipeline, where the universe is all pairs among the
    /// sampled nodes). The input is repaired to the invariants
    /// [`build`](Self::build) guarantees: self-pairs dropped, reversed
    /// `(v, u)` pairs canonicalized, and — unless the cleaned list is
    /// already strictly ascending, in which case its order is preserved —
    /// sorted and deduplicated.
    pub fn from_pairs(pairs: Vec<(NodeId, NodeId)>, policy: CandidatePolicy) -> Self {
        let mut canon: Vec<(NodeId, NodeId)> = Vec::with_capacity(pairs.len());
        for (a, b) in pairs {
            if a != b {
                canon.push(osn_graph::canonical(a, b));
            }
        }
        if !canon.windows(2).all(|w| w[0] < w[1]) {
            canon.sort_unstable();
            canon.dedup();
        }
        CandidateSet { pairs: canon, policy }
    }

    /// Wraps a pair list that already satisfies the enumeration
    /// invariants (canonical, deduplicated) and whose *order* must be
    /// preserved — the post-hoc filter oracle, where order-identity with
    /// pruned enumeration is the property under test. Debug-asserts the
    /// invariants instead of repairing them.
    pub fn from_filtered_pairs(pairs: Vec<(NodeId, NodeId)>, policy: CandidatePolicy) -> Self {
        debug_assert!(pairs.iter().all(|&(u, v)| u < v), "pairs must be canonical");
        CandidateSet { pairs, policy }
    }

    /// The candidate pairs, canonical and deduplicated.
    pub fn pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no candidates exist.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The policy this set was built for.
    pub fn policy(&self) -> CandidatePolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0-1-2-3-4 plus hub 5 connected to 0.
    fn fixture() -> Snapshot {
        Snapshot::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 5)])
    }

    #[test]
    fn two_hop_set() {
        let s = fixture();
        let c = CandidateSet::build(&s, CandidatePolicy::TwoHop, 0);
        assert!(c.pairs().contains(&(0, 2)));
        assert!(c.pairs().contains(&(1, 5)));
        assert!(!c.pairs().contains(&(0, 3)), "distance 3 excluded");
    }

    #[test]
    fn three_hop_set_is_superset() {
        let s = fixture();
        let two = CandidateSet::build(&s, CandidatePolicy::TwoHop, 0);
        let three = CandidateSet::build(&s, CandidatePolicy::ThreeHop, 0);
        assert!(three.len() > two.len());
        for p in two.pairs() {
            assert!(three.pairs().contains(p));
        }
        assert!(three.pairs().contains(&(0, 3)));
    }

    #[test]
    fn global_adds_hub_pairs() {
        let s = fixture();
        // Node 2 has degree 2; take top-1 by degree. Nodes 0..3 have degrees
        // 2,2,2,2 — ties break by id, so hub = node 0.
        let g = CandidateSet::build(&s, CandidatePolicy::Global, 1);
        // Pair (0,4) is at distance 4: only reachable via the Global policy.
        assert!(g.pairs().contains(&(0, 4)));
    }

    #[test]
    fn global_set_is_deduplicated_and_sorted() {
        let s = fixture();
        let g = CandidateSet::build(&s, CandidatePolicy::Global, 3);
        let mut sorted = g.pairs().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), g.len(), "duplicates survived");
        assert!(g.pairs().iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn fused_enumeration_cannot_drift_from_two_hop_build() {
        // Ring + chords: enough structure for multi-witness candidates.
        let n = 30u32;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push(osn_graph::canonical(i, (i + 1) % n));
            if i % 4 == 0 {
                edges.push(osn_graph::canonical(i, (i + 9) % n));
            }
        }
        let s = Snapshot::from_edges(n as usize, &edges);
        let built = CandidateSet::build(&s, CandidatePolicy::TwoHop, 0);
        for threads in [1, 3] {
            let (pairs, _) =
                crate::fused::enumerate_and_score_t(&s, &[crate::fused::LocalKind::Cn], threads);
            assert_eq!(pairs, built.pairs(), "threads={threads}");
        }
    }

    #[test]
    fn from_pairs_repairs_messy_input() {
        // Reversed pairs, duplicates (including a reversed duplicate),
        // self-pairs, unsorted order — the repaired set must satisfy the
        // build() invariants.
        let messy = vec![(4u32, 1u32), (2, 2), (0, 3), (1, 4), (3, 0), (5, 5), (2, 0)];
        let c = CandidateSet::from_pairs(messy, CandidatePolicy::TwoHop);
        assert_eq!(c.pairs(), &[(0, 2), (0, 3), (1, 4)]);
        assert!(c.pairs().iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn from_pairs_preserves_already_clean_order() {
        // A strictly ascending canonical list passes through untouched
        // (no sort, no reallocation of order).
        let clean = vec![(0u32, 2u32), (0, 5), (1, 3), (2, 7)];
        let c = CandidateSet::from_pairs(clean.clone(), CandidatePolicy::ThreeHop);
        assert_eq!(c.pairs(), &clean[..]);
    }

    /// Temporal ring + chords shared by the pruning drift tests.
    fn temporal_fixture() -> Snapshot {
        use osn_graph::temporal::TemporalGraph;
        let n = 30u32;
        let mut g = TemporalGraph::new();
        for _ in 0..n {
            g.add_node(0);
        }
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push(osn_graph::canonical(i, (i + 1) % n));
            if i % 4 == 0 {
                edges.push(osn_graph::canonical(i, (i + 9) % n));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let mut timed: Vec<(NodeId, NodeId, osn_graph::Timestamp)> = edges
            .into_iter()
            .map(|(a, b)| (a, b, ((a * 13 + b * 7) % n) as osn_graph::Timestamp * osn_graph::DAY))
            .collect();
        timed.sort_by_key(|&(_, _, t)| t);
        for (a, b, t) in timed {
            g.add_edge(a, b, t);
        }
        Snapshot::up_to(&g, g.edge_count())
    }

    fn probe_spec() -> PruneSpec {
        PruneSpec {
            active_idle_days: 12.0,
            inactive_idle_days: 22.0,
            window_days: 7.0,
            min_recent_edges: 1,
            cn_gap_days: 15.0,
        }
    }

    #[test]
    fn pruned_build_equals_posthoc_filtering() {
        let s = temporal_fixture();
        let spec = probe_spec();
        let act = NodeActivity::build(&s, spec.window());
        for policy in [CandidatePolicy::TwoHop, CandidatePolicy::ThreeHop, CandidatePolicy::Global]
        {
            let full = CandidateSet::build(&s, policy, 4);
            let posthoc: Vec<(NodeId, NodeId)> = full
                .pairs()
                .iter()
                .copied()
                .filter(|&(u, v)| spec.pair_passes(&s, &act, u, v))
                .collect();
            let pruned = CandidateSet::build_pruned(&s, policy, 4, Some((&act, &spec)));
            assert_eq!(pruned.pairs(), &posthoc[..], "{policy:?}");
            assert!(pruned.len() < full.len(), "{policy:?}: fixture must drop pairs");
            assert!(!pruned.is_empty(), "{policy:?}: fixture must keep pairs");
        }
    }

    #[test]
    fn pruned_fused_enumeration_cannot_drift_from_pruned_build() {
        let s = temporal_fixture();
        let spec = probe_spec();
        let act = NodeActivity::build(&s, spec.window());
        let built = CandidateSet::build_pruned(&s, CandidatePolicy::TwoHop, 0, Some((&act, &spec)));
        for threads in [1, 3] {
            let (pairs, _) = crate::fused::enumerate_and_score_pruned_t(
                &s,
                &[crate::fused::LocalKind::Cn],
                &act,
                &spec,
                threads,
            );
            assert_eq!(pairs, built.pairs(), "threads={threads}");
        }
    }

    #[test]
    fn no_existing_edges_in_candidates() {
        let s = fixture();
        for policy in [CandidatePolicy::TwoHop, CandidatePolicy::ThreeHop, CandidatePolicy::Global]
        {
            let c = CandidateSet::build(&s, policy, 2);
            for &(u, v) in c.pairs() {
                assert!(!s.has_edge(u, v), "{policy:?} contains existing edge ({u},{v})");
            }
        }
    }
}
