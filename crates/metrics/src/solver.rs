//! Batched frontier/SpMV solver engine for the global walk metrics.
//!
//! The per-source reference implementations of LRW and PPR
//! ([`crate::walk`]) advance one random-walk or push frontier at a time.
//! This module replaces them on the production path with *blocked
//! multi-source iteration*: `B` source columns advance through one sweep of
//! the snapshot's transition structure per step, so the adjacency CSR is
//! read once per iteration instead of once per source.
//!
//! Three pieces live here:
//!
//! * [`TransitionView`] — the degree-normalized transition view of a
//!   snapshot, built once per snapshot (an unweighted adjacency CSR plus a
//!   degree table; the 1/d(u) normalization is applied on the fly so the
//!   view is exact, never a rounded matrix).
//! * [`lrw_scores_t`] / [`ppr_scores_t`] — batched solvers producing one
//!   score per candidate pair. LRW runs the exact `m`-step walk recursion
//!   on a block of source columns; PPR solves `(I - (1-α)Pᵀ) p = α e_u`
//!   with a Chebyshev semi-iteration (residual-based stopping, so the
//!   answer is tolerance-certified regardless of the starting vector).
//! * [`SolverCache`] — the per-snapshot cache carried across a
//!   [`osn_graph::sequence::SnapshotSequence`] sweep: the shared
//!   `TransitionView` plus converged PPR vectors from the previous
//!   snapshot used to warm-start the next one.
//!
//! ## Warm-start fixed-point argument
//!
//! PPR's linear system `(I - M) p = α e_u` with `M = (1-α)Pᵀ` has
//! `‖M‖₁ = 1-α < 1`, hence `‖(I-M)⁻¹‖₁ ≤ 1/α`. The solver stops a column
//! when its *residual* satisfies `‖r‖₁ ≤ tol`, which certifies
//! `‖p - p̂‖₁ ≤ tol/α` against the exact fixed point `p̂` — a bound that
//! holds no matter where the iteration started. Warm-starting from the
//! previous snapshot's converged vector therefore changes the iteration
//! count (fewer steps when consecutive snapshots are similar) but never
//! moves the converged output beyond the existing tolerance: warm and cold
//! runs each land within `tol/α` of the same fixed point, so their scores
//! differ by at most `4·tol/α` per pair (two endpoint vectors, two runs).
//! Stale or wrong-sized cache entries are harmless for the same reason —
//! a warm vector is only ever an initial guess.
//!
//! ## Determinism
//!
//! Both solvers are bit-identical across thread counts *and* block widths:
//! every per-column update uses iteration-indexed scalars only (no
//! cross-column reductions), gathers accumulate in ascending-neighbor
//! order, and a column's result is snapshotted the first time its residual
//! crosses the tolerance — exactly the value a width-1 run would have
//! stopped at. Pair scores accumulate endpoint contributions in ascending
//! source order, matching the reference `c_u·p_uv + c_v·p_vu` evaluation
//! order.
//!
//! ## Nonfinite-accumulator guard
//!
//! Every iteration the solver folds column L1 norms anyway; a non-finite
//! norm aborts with [`SolverError::NonFinite`] naming the metric and the
//! iteration, instead of silently propagating NaN into scores (where the
//! `score_contract()` audit would only catch it after a full scoring pass).

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use osn_graph::snapshot::Snapshot;
use osn_graph::{par, NodeId};
use osn_linalg::SparseMatrix;

/// Hard ceiling on Chebyshev iterations before the solver gives up.
pub const PPR_MAX_ITERS: usize = 1000;

/// Total bytes of converged PPR vectors a persistent [`SolverCache`] will
/// retain per snapshot for warm-starting the next one (64 MiB).
const WARM_CAP_BYTES: usize = 64 << 20;

/// Structured failure from the batched solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// The nonfinite-accumulator guard tripped: a column's L1 norm went
    /// NaN/inf mid-iteration (bad parameters or corrupted input).
    NonFinite {
        /// Metric whose solve was running.
        metric: &'static str,
        /// Iteration (step) index at which the guard tripped.
        iteration: usize,
    },
    /// The iteration failed to reach the residual tolerance within
    /// [`PPR_MAX_ITERS`] steps.
    NoConvergence {
        /// Metric whose solve was running.
        metric: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// A direct solve inside the metric (an ALS normal-equations system)
    /// was numerically singular. Previously this was silently skipped,
    /// leaving stale factors behind; now it surfaces here and feeds the
    /// same audit panic class as the other guards. Recoverable by
    /// raising the metric's ridge regularization.
    Singular {
        /// Metric whose solve was running.
        metric: &'static str,
        /// Iteration (sweep) index at which the system lost rank.
        iteration: usize,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::NonFinite { metric, iteration } => write!(
                f,
                "metric {metric} hit a non-finite accumulator at solver iteration \
                 {iteration} (nonfinite-accumulator guard)"
            ),
            SolverError::NoConvergence { metric, iterations } => {
                write!(
                    f,
                    "metric {metric} failed to converge within {iterations} solver iterations"
                )
            }
            SolverError::Singular { metric, iteration } => write!(
                f,
                "metric {metric} hit a singular normal-equations system at solver sweep \
                 {iteration}; raise the ridge regularization"
            ),
        }
    }
}

impl std::error::Error for SolverError {}

/// Degree-normalized transition-matrix view of one snapshot.
///
/// Holds the unweighted adjacency in CSR form plus the degree table; the
/// column-stochastic transition matrix `P` (and its transpose) are applied
/// on the fly as `(Pᵀ z)_v = Σ_{u∈Γ(v)} z_u / d(u)`, so no rounded matrix
/// is ever materialized. Built once per snapshot and shared (via
/// [`SolverCache`]) by every metric that needs it.
pub struct TransitionView {
    adj: SparseMatrix,
    degree: Vec<u32>,
}

impl TransitionView {
    /// Builds the view from a snapshot. O(n + 2E): the snapshot already
    /// stores sorted deduplicated neighbor lists, so this is a straight
    /// CSR concatenation.
    pub fn build(snap: &Snapshot) -> Self {
        let n = snap.node_count();
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut col_idx: Vec<u32> = Vec::with_capacity(2 * snap.edge_count());
        let mut degree = Vec::with_capacity(n);
        for u in 0..n {
            let nb = snap.neighbors(u as NodeId);
            col_idx.extend_from_slice(nb);
            row_ptr.push(col_idx.len());
            // linklens-allow(truncating-cast): degree < node_count ≤ u32::MAX
            degree.push(nb.len() as u32);
        }
        let values = vec![1.0; col_idx.len()];
        let adj = SparseMatrix::from_csr(n, n, row_ptr, col_idx, values)
            // linklens-allow(unwrap-in-lib): Snapshot guarantees sorted, deduplicated, in-bounds adjacency
            .expect("snapshot adjacency is sorted, deduplicated CSR");
        TransitionView { adj, degree }
    }

    /// Number of nodes in the snapshot this view was built from.
    pub fn node_count(&self) -> usize {
        self.adj.rows()
    }

    /// The unweighted adjacency matrix (CSR, unit values).
    pub fn adjacency(&self) -> &SparseMatrix {
        &self.adj
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> u32 {
        self.degree[u as usize]
    }

    /// The full degree table.
    pub fn degrees(&self) -> &[u32] {
        &self.degree
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[u32] {
        self.adj.row(v as usize).0
    }

    /// Sum of degrees (= 2E).
    pub fn volume(&self) -> usize {
        self.adj.nnz()
    }
}

/// Block width (number of source columns advanced per CSR sweep) for a
/// snapshot of `n` nodes: sized so the ~5 working vectors of the PPR
/// solver fit in about 8 MiB, clamped to `[1, 64]`. A function of `n`
/// only — never the thread count — so results are machine-independent.
pub fn block_width(n: usize) -> usize {
    ((8usize << 20) / (40 * n.max(1))).clamp(1, 64)
}

/// Counters the batched solvers accumulate into their [`SolverCache`];
/// the warm-vs-cold benchmark and the warm-start tests read these.
#[derive(Debug, Clone, Default)]
pub struct SolverStats {
    /// Total Chebyshev iterations spent across all PPR source columns.
    pub ppr_iterations: u64,
    /// PPR source columns that started from a cached warm vector.
    pub ppr_warm_starts: u64,
    /// PPR source columns solved in total.
    pub ppr_sources: u64,
    /// ALS factorization fits performed (Rescal).
    pub rescal_fits: u64,
    /// ALS fits that warm-started from the previous snapshot's factors.
    pub rescal_warm_starts: u64,
    /// Total ALS sweeps spent across all factorization fits.
    pub rescal_iterations: u64,
}

/// Per-snapshot solver state carried across a snapshot sweep.
///
/// Holds the shared [`TransitionView`] for the current snapshot and (when
/// persistent) converged PPR vectors from the current and previous
/// snapshots, used purely as warm-start initial guesses — correctness
/// never depends on their freshness (see the module docs). Transient
/// caches (the default inside one-shot scoring entry points) never retain
/// vectors, so single-snapshot callers keep bit-identical cold-start
/// behavior.
pub struct SolverCache {
    persistent: bool,
    key: Option<(usize, usize)>,
    transition: Option<Arc<TransitionView>>,
    // Ordered maps: warm-start caches are lookup-only today, but a
    // BTreeMap guarantees any future iteration (eviction, diagnostics)
    // is deterministic.
    ppr_prev: BTreeMap<NodeId, Vec<f64>>,
    ppr_curr: BTreeMap<NodeId, Vec<f64>>,
    rescal_prev: Option<(u64, Arc<crate::rescal::RescalModel>)>,
    rescal_curr: Option<(u64, Arc<crate::rescal::RescalModel>)>,
    /// Iteration counters accumulated by the solvers.
    pub stats: SolverStats,
}

impl SolverCache {
    /// A throwaway cache for a single scoring call: shares the
    /// `TransitionView` within the call but never retains warm vectors,
    /// so repeated calls stay bit-identical.
    pub fn transient() -> Self {
        SolverCache {
            persistent: false,
            key: None,
            transition: None,
            ppr_prev: BTreeMap::new(),
            ppr_curr: BTreeMap::new(),
            rescal_prev: None,
            rescal_curr: None,
            stats: SolverStats::default(),
        }
    }

    /// A cache meant to live across a snapshot sweep: retains converged
    /// PPR vectors (up to [`WARM_CAP_BYTES`]) to warm-start the next
    /// snapshot's solves.
    pub fn sweep() -> Self {
        SolverCache { persistent: true, ..SolverCache::transient() }
    }

    /// Whether this cache retains warm-start vectors across snapshots.
    pub fn is_persistent(&self) -> bool {
        self.persistent
    }

    /// Points the cache at `snap`, rebuilding the [`TransitionView`] and
    /// rotating warm vectors (current → previous) when the snapshot
    /// changed. Keyed on `(node_count, edge_count)` — cheap, and within
    /// one monotone growth sweep each snapshot adds edges, so the key is
    /// unique per snapshot.
    pub fn ensure_snapshot(&mut self, snap: &Snapshot) {
        let key = (snap.node_count(), snap.edge_count());
        if self.key == Some(key) {
            return;
        }
        self.key = Some(key);
        self.ppr_prev = std::mem::take(&mut self.ppr_curr);
        self.rescal_prev = self.rescal_curr.take();
        if !self.persistent {
            self.ppr_prev.clear();
            self.rescal_prev = None;
        }
        self.transition = Some(Arc::new(TransitionView::build(snap)));
    }

    /// The shared transition view for the snapshot last passed to
    /// [`ensure_snapshot`](Self::ensure_snapshot), if any.
    pub fn transition(&self) -> Option<Arc<TransitionView>> {
        self.transition.clone()
    }

    /// How many converged PPR source vectors this cache will retain for a
    /// snapshot of `n` nodes (0 for transient caches).
    pub fn warm_budget_sources(&self, n: usize) -> usize {
        if self.persistent {
            WARM_CAP_BYTES / (8 * n.max(1))
        } else {
            0
        }
    }

    /// Warm-start vector for `src`, preferring the current snapshot's
    /// (re-scoring within a snapshot) over the previous one's.
    fn ppr_warm(&self, src: NodeId) -> Option<&[f64]> {
        self.ppr_curr.get(&src).or_else(|| self.ppr_prev.get(&src)).map(Vec::as_slice)
    }

    /// Retains a converged vector for warm-starting, respecting the
    /// memory budget. No-op on transient caches.
    fn store_ppr(&mut self, src: NodeId, vec: Vec<f64>, limit: usize) {
        if self.persistent && self.ppr_curr.len() < limit {
            self.ppr_curr.insert(src, vec);
        }
    }

    /// The factorization model fitted on the *current* snapshot under the
    /// given config fingerprint, if one was stored — exact reuse, so two
    /// Rescal configurations sharing one cache can never alias each
    /// other's fits.
    pub fn rescal_model(&self, fingerprint: u64) -> Option<Arc<crate::rescal::RescalModel>> {
        match &self.rescal_curr {
            Some((fp, model)) if *fp == fingerprint => Some(Arc::clone(model)),
            _ => None,
        }
    }

    /// The *previous* snapshot's fitted model under the same config
    /// fingerprint, used purely as a warm-start initial guess for the
    /// next certified fit (never reused as-is).
    pub fn rescal_warm(&self, fingerprint: u64) -> Option<Arc<crate::rescal::RescalModel>> {
        match &self.rescal_prev {
            Some((fp, model)) if *fp == fingerprint => Some(Arc::clone(model)),
            _ => None,
        }
    }

    /// Registers a freshly fitted factorization model for the current
    /// snapshot. No-op on transient caches, mirroring
    /// [`store_ppr`](Self::store_ppr)'s gating, so one-shot entry points
    /// keep bit-identical cold behavior.
    pub fn store_rescal(&mut self, fingerprint: u64, model: Arc<crate::rescal::RescalModel>) {
        if self.persistent {
            self.rescal_curr = Some((fingerprint, model));
        }
    }
}

/// Pair batch regrouped by source endpoint: each unique source carries the
/// list of `(pair index, partner)` queries to resolve against its solved
/// vector. Both endpoints of every pair appear as sources (the combines
/// need `p_u[v]` and `p_v[u]`).
struct SourcePlan {
    sources: Vec<NodeId>,
    offsets: Vec<usize>,
    queries: Vec<(u32, NodeId)>,
}

impl SourcePlan {
    fn build(pairs: &[(NodeId, NodeId)]) -> Self {
        assert!(pairs.len() <= u32::MAX as usize, "pair batch exceeds u32 index range");
        let mut items: Vec<(NodeId, u32, NodeId)> = Vec::with_capacity(pairs.len() * 2);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            // linklens-allow(truncating-cast): guarded by the batch-size assert above
            let idx = i as u32;
            items.push((u, idx, v));
            items.push((v, idx, u));
        }
        items.sort_unstable();
        let mut sources = Vec::new();
        let mut offsets = Vec::new();
        let mut queries = Vec::with_capacity(items.len());
        for (src, idx, partner) in items {
            if sources.last() != Some(&src) {
                sources.push(src);
                offsets.push(queries.len());
            }
            queries.push((idx, partner));
        }
        offsets.push(queries.len());
        SourcePlan { sources, offsets, queries }
    }

    fn queries(&self, si: usize) -> &[(u32, NodeId)] {
        &self.queries[self.offsets[si]..self.offsets[si + 1]]
    }
}

/// Per-worker LRW workspace: current distribution, next distribution, and
/// the pruned per-node shares, each `n × width` row-major.
struct LrwWs {
    x: Vec<f64>,
    y: Vec<f64>,
    s: Vec<f64>,
}

impl LrwWs {
    fn new(n: usize, w: usize) -> Self {
        LrwWs { x: vec![0.0; n * w], y: vec![0.0; n * w], s: vec![0.0; n * w] }
    }
}

/// Batched LRW scores for `pairs`: identical recursion to
/// [`crate::walk::walk_distribution`] (including the degree-share prune
/// and dangling self-absorption), advanced over blocks of source columns
/// in one CSR sweep per step. Per-node share sums gather in ascending
/// neighbor order, which reassociates the reference's frontier-order
/// additions — scores agree to float-reassociation tolerance (~1e-10 with
/// `prune = 0`; pruning compares the same `share < prune` expression, so
/// only knife-edge shares within one ulp of `prune` can differ).
pub fn lrw_scores_t(
    tv: &TransitionView,
    pairs: &[(NodeId, NodeId)],
    steps: usize,
    prune: f64,
    threads: usize,
    metric: &'static str,
) -> Result<Vec<f64>, SolverError> {
    lrw_scores_with_width(tv, pairs, steps, prune, threads, block_width(tv.node_count()), metric)
}

/// [`lrw_scores_t`] with an explicit block width (results are
/// bit-identical for every width ≥ 1; exposed for the invariance tests).
pub fn lrw_scores_with_width(
    tv: &TransitionView,
    pairs: &[(NodeId, NodeId)],
    steps: usize,
    prune: f64,
    threads: usize,
    width: usize,
    metric: &'static str,
) -> Result<Vec<f64>, SolverError> {
    let n = tv.node_count();
    let w = width.max(1);
    let plan = SourcePlan::build(pairs);
    let mut scores = vec![0.0; pairs.len()];
    if plan.sources.is_empty() || n == 0 {
        return Ok(scores);
    }
    let two_e = (tv.volume().max(1)) as f64;
    let nblocks = plan.sources.len().div_ceil(w);
    let results = par::run_indexed_init(
        nblocks,
        threads.max(1),
        || LrwWs::new(n, w),
        |ws, b| {
            let range = (b * w)..((b + 1) * w).min(plan.sources.len());
            lrw_block(tv, &plan, range, steps, prune, two_e, ws, metric)
        },
    );
    for block in results {
        for (idx, val) in block? {
            scores[idx as usize] += val;
        }
    }
    Ok(scores)
}

#[allow(clippy::too_many_arguments)]
fn lrw_block(
    tv: &TransitionView,
    plan: &SourcePlan,
    range: Range<usize>,
    steps: usize,
    prune: f64,
    two_e: f64,
    ws: &mut LrwWs,
    metric: &'static str,
) -> Result<Vec<(u32, f64)>, SolverError> {
    let n = tv.node_count();
    let w = ws.x.len() / n.max(1);
    ws.x.fill(0.0);
    for (j, si) in range.clone().enumerate() {
        ws.x[plan.sources[si] as usize * w + j] = 1.0;
    }
    for step in 0..steps {
        ws.y.fill(0.0);
        // Phase A: per-node pruned shares (same division and comparison as
        // the per-source reference); dangling nodes self-absorb.
        for u in 0..n {
            let d = tv.degree[u];
            let row = u * w;
            if d == 0 {
                for j in 0..w {
                    ws.y[row + j] += ws.x[row + j];
                    ws.s[row + j] = 0.0;
                }
                continue;
            }
            let dd = f64::from(d);
            for j in 0..w {
                let share = ws.x[row + j] / dd;
                ws.s[row + j] = if share < prune { 0.0 } else { share };
            }
        }
        // Phase B: gather shares along in-edges, ascending neighbor order.
        for v in 0..n {
            let row = v * w;
            for &u in tv.neighbors(v as NodeId) {
                let src_row = u as usize * w;
                for j in 0..w {
                    ws.y[row + j] += ws.s[src_row + j];
                }
            }
        }
        std::mem::swap(&mut ws.x, &mut ws.y);
        if ws.x.iter().any(|v| !v.is_finite()) {
            return Err(SolverError::NonFinite { metric, iteration: step });
        }
    }
    let mut out = Vec::new();
    for (j, si) in range.enumerate() {
        let src = plan.sources[si];
        let coeff = f64::from(tv.degree(src)) / two_e;
        for &(idx, partner) in plan.queries(si) {
            out.push((idx, coeff * ws.x[partner as usize * w + j]));
        }
    }
    Ok(out)
}

/// Per-worker PPR workspace: solution, residual, Chebyshev direction,
/// degree-normalized shares, and gather target, each `n × width`
/// row-major; plus per-column norms and done flags.
struct PprWs {
    x: Vec<f64>,
    r: Vec<f64>,
    d: Vec<f64>,
    s: Vec<f64>,
    g: Vec<f64>,
    norms: Vec<f64>,
    done: Vec<bool>,
}

impl PprWs {
    fn new(n: usize, w: usize) -> Self {
        PprWs {
            x: vec![0.0; n * w],
            r: vec![0.0; n * w],
            d: vec![0.0; n * w],
            s: vec![0.0; n * w],
            g: vec![0.0; n * w],
            norms: vec![0.0; w],
            done: vec![false; w],
        }
    }
}

struct PprBlockOut {
    contribs: Vec<(u32, f64)>,
    store: Vec<(NodeId, Vec<f64>)>,
    iterations: u64,
    warm_starts: u64,
}

/// Batched PPR scores for `pairs`: solves `(I - (1-α)Pᵀ) p = α e_u` per
/// source with a blocked Chebyshev semi-iteration (operator spectrum
/// `[α, 2-α]`), stopping each column at residual `‖r‖₁ ≤ tol_l1`, which
/// certifies `‖p - p̂‖₁ ≤ tol_l1/α` against the exact fixed point (see
/// the module docs). Warm-start vectors from `cache` seed the initial
/// guess; converged vectors are stored back when the cache is persistent.
#[allow(clippy::too_many_arguments)]
pub fn ppr_scores_t(
    tv: &TransitionView,
    pairs: &[(NodeId, NodeId)],
    alpha: f64,
    tol_l1: f64,
    threads: usize,
    cache: &mut SolverCache,
    metric: &'static str,
) -> Result<Vec<f64>, SolverError> {
    let w = block_width(tv.node_count());
    ppr_scores_with_width(tv, pairs, alpha, tol_l1, threads, w, cache, metric)
}

/// [`ppr_scores_t`] with an explicit block width (results are
/// bit-identical for every width ≥ 1; exposed for the invariance tests).
#[allow(clippy::too_many_arguments)]
pub fn ppr_scores_with_width(
    tv: &TransitionView,
    pairs: &[(NodeId, NodeId)],
    alpha: f64,
    tol_l1: f64,
    threads: usize,
    width: usize,
    cache: &mut SolverCache,
    metric: &'static str,
) -> Result<Vec<f64>, SolverError> {
    let n = tv.node_count();
    let w = width.max(1);
    let plan = SourcePlan::build(pairs);
    let mut scores = vec![0.0; pairs.len()];
    if plan.sources.is_empty() || n == 0 {
        return Ok(scores);
    }
    let store_limit = cache.warm_budget_sources(n);
    let nblocks = plan.sources.len().div_ceil(w);
    let results = {
        let cache_ref: &SolverCache = cache;
        par::run_indexed_init(
            nblocks,
            threads.max(1),
            || PprWs::new(n, w),
            |ws, b| {
                let range = (b * w)..((b + 1) * w).min(plan.sources.len());
                ppr_block(tv, &plan, range, alpha, tol_l1, store_limit, cache_ref, ws, metric)
            },
        )
    };
    for block in results {
        let block = block?;
        for (idx, val) in block.contribs {
            scores[idx as usize] += val;
        }
        for (src, vec) in block.store {
            cache.store_ppr(src, vec, store_limit);
        }
        cache.stats.ppr_iterations += block.iterations;
        cache.stats.ppr_warm_starts += block.warm_starts;
    }
    cache.stats.ppr_sources += plan.sources.len() as u64;
    Ok(scores)
}

/// One block of the Chebyshev semi-iteration (Saad, *Iterative Methods*,
/// Alg. 12.1) on the SPD-spectrum operator `A = I - (1-α)Pᵀ` with
/// eigenvalue bounds `[α, 2-α]`: center `θ = 1`, half-width `δ = 1-α`.
/// All update scalars are iteration-indexed, so every column follows the
/// exact arithmetic a width-1 run would.
#[allow(clippy::too_many_arguments)]
fn ppr_block(
    tv: &TransitionView,
    plan: &SourcePlan,
    range: Range<usize>,
    alpha: f64,
    tol: f64,
    store_limit: usize,
    cache: &SolverCache,
    ws: &mut PprWs,
    metric: &'static str,
) -> Result<PprBlockOut, SolverError> {
    let n = tv.node_count();
    let w = ws.norms.len();
    let active = range.len();
    let oma = 1.0 - alpha;
    let mut warm_starts = 0u64;

    // Initial guess: warm vectors where available, zero otherwise.
    ws.x.fill(0.0);
    for (j, si) in range.clone().enumerate() {
        if let Some(warm) = cache.ppr_warm(plan.sources[si]) {
            let len = warm.len().min(n);
            for (i, &v) in warm[..len].iter().enumerate() {
                ws.x[i * w + j] = v;
            }
            warm_starts += 1;
        }
    }

    // Applies M z = (1-α)·Pᵀ z via shares s = z/d (dangling rows emit
    // nothing) gathered in ascending-neighbor order into g.
    fn gather(tv: &TransitionView, z: &[f64], s: &mut [f64], g: &mut [f64], w: usize) {
        let n = tv.node_count();
        for u in 0..n {
            let d = tv.degree[u];
            let row = u * w;
            if d == 0 {
                s[row..row + w].fill(0.0);
            } else {
                let dd = f64::from(d);
                for j in 0..w {
                    s[row + j] = z[row + j] / dd;
                }
            }
        }
        g.fill(0.0);
        for v in 0..n {
            let row = v * w;
            for &u in tv.neighbors(v as NodeId) {
                let src_row = u as usize * w;
                for j in 0..w {
                    g[row + j] += s[src_row + j];
                }
            }
        }
    }

    // r = b - A x0 = α e_src - x0 + (1-α)Pᵀ x0.
    gather(tv, &ws.x, &mut ws.s, &mut ws.g, w);
    for i in 0..n * w {
        ws.r[i] = oma * ws.g[i] - ws.x[i];
    }
    for (j, si) in range.clone().enumerate() {
        ws.r[plan.sources[si] as usize * w + j] += alpha;
    }
    ws.d.copy_from_slice(&ws.r);

    let sigma1 = 1.0 / oma;
    let delta = oma;
    let mut rho = oma;
    for (j, flag) in ws.done.iter_mut().enumerate() {
        *flag = j >= active;
    }
    let mut query_vals: Vec<Option<Vec<f64>>> = vec![None; active];
    let mut store_cols: Vec<Option<Vec<f64>>> = vec![None; active];
    let mut iterations = 0u64;
    let mut k = 0usize;

    loop {
        // Column residual norms, accumulated row-major so the fold order
        // per column is independent of the block width.
        ws.norms.fill(0.0);
        for i in 0..n {
            let row = i * w;
            for j in 0..active {
                ws.norms[j] += ws.r[row + j].abs();
            }
        }
        for j in 0..active {
            if !ws.norms[j].is_finite() {
                return Err(SolverError::NonFinite { metric, iteration: k });
            }
        }
        for j in 0..active {
            if !ws.done[j] && ws.norms[j] <= tol {
                ws.done[j] = true;
                iterations += k as u64;
                let si = range.start + j;
                let vals =
                    plan.queries(si).iter().map(|&(_, p)| ws.x[p as usize * w + j]).collect();
                query_vals[j] = Some(vals);
                if si < store_limit {
                    store_cols[j] = Some((0..n).map(|i| ws.x[i * w + j]).collect());
                }
            }
        }
        if ws.done.iter().all(|&d| d) {
            break;
        }
        if k >= PPR_MAX_ITERS {
            return Err(SolverError::NoConvergence { metric, iterations: k });
        }

        // x += d;  r -= A d  (A d = d - (1-α)Pᵀ d)
        for i in 0..n * w {
            ws.x[i] += ws.d[i];
        }
        gather(tv, &ws.d, &mut ws.s, &mut ws.g, w);
        for i in 0..n * w {
            ws.r[i] -= ws.d[i] - oma * ws.g[i];
        }
        let rho_next = 1.0 / (2.0 * sigma1 - rho);
        let a = rho_next * rho;
        let c = 2.0 * rho_next / delta;
        for i in 0..n * w {
            ws.d[i] = a * ws.d[i] + c * ws.r[i];
        }
        rho = rho_next;
        k += 1;
    }

    let mut contribs = Vec::new();
    let mut store = Vec::new();
    for (j, si) in range.enumerate() {
        // linklens-allow(unwrap-in-lib): the loop above only exits once every active column froze
        let vals = query_vals[j].take().expect("column converged");
        for (&(idx, _), val) in plan.queries(si).iter().zip(vals) {
            contribs.push((idx, val));
        }
        if let Some(col) = store_cols[j].take() {
            store.push((plan.sources[si], col));
        }
    }
    Ok(PprBlockOut { contribs, store, iterations, warm_starts })
}

/// Batched bilinear pair scoring for a fitted factorization `A ≈ X R Xᵀ`:
/// with `XR = X·R` precomputed once for the whole batch, each pair's
/// score `x_uᵀ R x_v + x_vᵀ R x_u = ⟨(XR)_u, x_v⟩ + ⟨(XR)_v, x_u⟩` is two
/// length-r dot products instead of an O(r²) bilinear form per pair.
///
/// Each pair's value is a pure function of its own four rows, folded in
/// ascending index order, so the output is bit-identical for every
/// `threads` value and block partition. Note the association differs
/// from the per-pair oracle `RescalModel::score` (which folds `R x_v`
/// first), so cross-checks against it carry a reassociation tolerance
/// while *fit* equivalence stays bitwise.
pub fn bilinear_scores_t(
    x: &osn_linalg::Matrix,
    r: &osn_linalg::Matrix,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> Vec<f64> {
    assert_eq!(x.cols(), r.rows(), "X/R rank mismatch");
    assert_eq!(r.rows(), r.cols(), "core must be square");
    let xr = x.matmul(r);
    let blocks = par::block_ranges(pairs.len(), threads.max(1) * 4);
    let parts = par::run_indexed(blocks.len(), threads, |b| {
        blocks[b]
            .clone()
            .map(|i| {
                let (u, v) = pairs[i];
                let (xu, xv) = (x.row(u as usize), x.row(v as usize));
                let (xru, xrv) = (xr.row(u as usize), xr.row(v as usize));
                let mut s = 0.0;
                for (p, q) in xru.iter().zip(xv) {
                    s += p * q;
                }
                for (p, q) in xrv.iter().zip(xu) {
                    s += p * q;
                }
                s
            })
            .collect::<Vec<f64>>()
    });
    let mut out = Vec::with_capacity(pairs.len());
    for part in parts {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_linalg::Matrix;

    fn ring_with_chords(n: usize) -> Snapshot {
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i as NodeId, ((i + 1) % n) as NodeId));
            if i % 3 == 0 {
                edges.push((i as NodeId, ((i + n / 2) % n) as NodeId));
            }
        }
        Snapshot::from_edges(n, &edges)
    }

    fn all_pairs(n: usize) -> Vec<(NodeId, NodeId)> {
        let mut pairs = Vec::new();
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                pairs.push((u, v));
            }
        }
        pairs
    }

    #[test]
    fn transition_view_matches_snapshot() {
        let snap = ring_with_chords(17);
        let tv = TransitionView::build(&snap);
        assert_eq!(tv.node_count(), 17);
        assert_eq!(tv.volume(), 2 * snap.edge_count());
        for u in 0..17u32 {
            assert_eq!(tv.degree(u) as usize, snap.degree(u));
            assert_eq!(tv.neighbors(u), snap.neighbors(u));
        }
    }

    #[test]
    fn block_width_bounds() {
        assert_eq!(block_width(0), 64);
        assert_eq!(block_width(10), 64);
        assert!(block_width(10_000) >= 1);
        assert_eq!(block_width(usize::MAX / 64), 1);
        for n in [1, 100, 5_000, 1_000_000] {
            let w = block_width(n);
            assert!((1..=64).contains(&w), "width {w} out of range for n={n}");
        }
    }

    /// Dense ground truth: solve (I - (1-α)Pᵀ) p = α e_src with LU.
    fn dense_ppr(snap: &Snapshot, src: NodeId, alpha: f64) -> Vec<f64> {
        let n = snap.node_count();
        let mut a = Matrix::zeros(n, n);
        for v in 0..n {
            a[(v, v)] = 1.0;
            for &u in snap.neighbors(v as NodeId) {
                let d = snap.degree(u).max(1) as f64;
                a[(v, u as usize)] -= (1.0 - alpha) / d;
            }
        }
        let mut b = vec![0.0; n];
        b[src as usize] = alpha;
        a.solve_many(&[b]).expect("nonsingular")[0].clone()
    }

    #[test]
    fn ppr_matches_dense_solve() {
        let snap = ring_with_chords(23);
        let tv = TransitionView::build(&snap);
        let pairs = all_pairs(23);
        let mut cache = SolverCache::transient();
        let scores =
            ppr_scores_t(&tv, &pairs, 0.15, 1e-10, par::max_threads(), &mut cache, "PPR").unwrap();
        let dense: Vec<Vec<f64>> = (0..23).map(|u| dense_ppr(&snap, u, 0.15)).collect();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let want = dense[u as usize][v as usize] + dense[v as usize][u as usize];
            assert!(
                (scores[i] - want).abs() < 1e-8,
                "pair ({u},{v}): got {} want {want}",
                scores[i]
            );
        }
    }

    #[test]
    fn ppr_width_and_threads_invariant() {
        let snap = ring_with_chords(31);
        let tv = TransitionView::build(&snap);
        let pairs = all_pairs(31);
        let mut cache = SolverCache::transient();
        let base = ppr_scores_with_width(&tv, &pairs, 0.15, 1e-6, 1, 1, &mut cache, "PPR").unwrap();
        for width in [2, 3, 7, 64] {
            for threads in [1, 4] {
                let mut c = SolverCache::transient();
                let got =
                    ppr_scores_with_width(&tv, &pairs, 0.15, 1e-6, threads, width, &mut c, "PPR")
                        .unwrap();
                assert_eq!(base, got, "width {width} threads {threads} diverged");
            }
        }
    }

    #[test]
    fn ppr_isolated_source_is_exact_zero() {
        let snap = Snapshot::from_edges(4, &[(0, 1)]);
        let tv = TransitionView::build(&snap);
        let mut cache = SolverCache::transient();
        let scores = ppr_scores_t(&tv, &[(2, 3)], 0.15, 1e-4, 1, &mut cache, "PPR").unwrap();
        // Isolated endpoints: b = α e_src, first iterate lands exactly on
        // the fixed point p = α e_src, so the cross mass is exactly 0...
        // except the solution keeps α at the source itself; partners see 0.
        assert_eq!(scores[0], 0.0);
    }

    #[test]
    fn ppr_warm_start_cuts_iterations_not_scores() {
        let n = 40;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i as NodeId, ((i + 1) % n) as NodeId));
        }
        let snap_a = Snapshot::from_edges(n, &edges);
        edges.push((0, (n / 2) as NodeId));
        edges.push((3, (n / 2 + 3) as NodeId));
        let snap_b = Snapshot::from_edges(n, &edges);
        let pairs = all_pairs(n);
        let alpha = 0.15;
        let tol = 1e-7;

        let mut sweep = SolverCache::sweep();
        sweep.ensure_snapshot(&snap_a);
        let tv_a = sweep.transition().unwrap();
        let _ = ppr_scores_t(&tv_a, &pairs, alpha, tol, 1, &mut sweep, "PPR").unwrap();
        assert!(sweep.stats.ppr_warm_starts == 0, "first snapshot must run cold");
        sweep.ensure_snapshot(&snap_b);
        let before = sweep.stats.clone();
        let tv_b = sweep.transition().unwrap();
        let warm = ppr_scores_t(&tv_b, &pairs, alpha, tol, 1, &mut sweep, "PPR").unwrap();
        let warm_iters = sweep.stats.ppr_iterations - before.ppr_iterations;
        assert!(sweep.stats.ppr_warm_starts > 0, "second snapshot must reuse cached vectors");

        let mut cold_cache = SolverCache::transient();
        cold_cache.ensure_snapshot(&snap_b);
        let tv_cold = cold_cache.transition().unwrap();
        let cold = ppr_scores_t(&tv_cold, &pairs, alpha, tol, 1, &mut cold_cache, "PPR").unwrap();
        let cold_iters = cold_cache.stats.ppr_iterations;

        assert!(
            warm_iters < cold_iters,
            "warm start must cut iterations ({warm_iters} vs {cold_iters})"
        );
        let bound = 4.0 * tol / alpha;
        for (i, (&wv, &cv)) in warm.iter().zip(&cold).enumerate() {
            assert!(
                (wv - cv).abs() <= bound,
                "pair {i}: warm {wv} vs cold {cv} beyond fixed-point bound {bound}"
            );
        }
    }

    #[test]
    fn ppr_nan_alpha_trips_nonfinite_guard() {
        let snap = ring_with_chords(9);
        let tv = TransitionView::build(&snap);
        let mut cache = SolverCache::transient();
        let err = ppr_scores_t(&tv, &[(0, 3)], f64::NAN, 1e-4, 1, &mut cache, "PPR").unwrap_err();
        assert!(matches!(err, SolverError::NonFinite { metric: "PPR", .. }), "got {err}");
    }

    #[test]
    fn ppr_unreachable_tolerance_reports_no_convergence() {
        let snap = ring_with_chords(9);
        let tv = TransitionView::build(&snap);
        let mut cache = SolverCache::transient();
        let err = ppr_scores_t(&tv, &[(0, 3)], 0.15, -1.0, 1, &mut cache, "PPR").unwrap_err();
        assert!(
            matches!(err, SolverError::NoConvergence { metric: "PPR", iterations: PPR_MAX_ITERS }),
            "got {err}"
        );
    }

    #[test]
    fn lrw_width_and_threads_invariant() {
        let snap = ring_with_chords(29);
        let tv = TransitionView::build(&snap);
        let pairs = all_pairs(29);
        let base = lrw_scores_with_width(&tv, &pairs, 3, 1e-7, 1, 1, "LRW").unwrap();
        for width in [2, 5, 64] {
            for threads in [1, 4] {
                let got =
                    lrw_scores_with_width(&tv, &pairs, 3, 1e-7, threads, width, "LRW").unwrap();
                assert_eq!(base, got, "width {width} threads {threads} diverged");
            }
        }
    }

    #[test]
    fn lrw_path_graph_hand_check() {
        // Path 0-1-2-3, steps = 3, prune = 0. Walk from 0: after 3 steps
        // the mass at 3 is 1/4; from 3 symmetric. two_e = 6.
        // score(0,3) = d(0)/6 · p03 + d(3)/6 · p30 = (1/6)(1/4)·2 = 1/12.
        let snap = Snapshot::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let tv = TransitionView::build(&snap);
        let scores = lrw_scores_t(&tv, &[(0, 3)], 3, 0.0, 1, "LRW").unwrap();
        assert!((scores[0] - 1.0 / 12.0).abs() < 1e-12, "got {}", scores[0]);
    }

    #[test]
    fn lrw_dangling_mass_conserved() {
        // Star with an isolated extra node: total walk mass stays 1.
        let snap = Snapshot::from_edges(5, &[(0, 1), (0, 2), (0, 3)]);
        let tv = TransitionView::build(&snap);
        let scores = lrw_scores_t(&tv, &[(4, 1)], 3, 0.0, 1, "LRW").unwrap();
        // Node 4 is isolated: its walk self-absorbs, never reaches 1, and
        // node 1's walk never reaches 4.
        assert_eq!(scores[0], 0.0);
    }

    #[test]
    fn source_plan_groups_and_covers() {
        let pairs = [(3u32, 7u32), (1, 7), (3, 5)];
        let plan = SourcePlan::build(&pairs);
        assert_eq!(plan.sources, vec![1, 3, 5, 7]);
        let total: usize = (0..plan.sources.len()).map(|i| plan.queries(i).len()).sum();
        assert_eq!(total, 6);
        assert_eq!(plan.queries(1), &[(0, 7), (2, 5)]); // source 3, pair order
        assert_eq!(plan.queries(3), &[(0, 3), (1, 1)]); // source 7
    }

    #[test]
    fn cache_rotation_and_store_gating() {
        let snap_a = ring_with_chords(11);
        let mut transient = SolverCache::transient();
        transient.ensure_snapshot(&snap_a);
        assert_eq!(transient.warm_budget_sources(11), 0);
        transient.store_ppr(3, vec![1.0; 11], 100);
        assert!(transient.ppr_warm(3).is_none(), "transient caches never retain vectors");

        let mut sweep = SolverCache::sweep();
        sweep.ensure_snapshot(&snap_a);
        assert!(sweep.warm_budget_sources(11) > 0);
        sweep.store_ppr(3, vec![1.0; 11], sweep.warm_budget_sources(11));
        assert!(sweep.ppr_warm(3).is_some());
        // Same snapshot key: no rotation.
        sweep.ensure_snapshot(&snap_a);
        assert!(sweep.ppr_warm(3).is_some());
        // New snapshot: current rotates to previous, still warm-usable.
        let snap_b = ring_with_chords(13);
        sweep.ensure_snapshot(&snap_b);
        assert!(sweep.ppr_warm(3).is_some(), "previous snapshot's vector still seeds");
        // Two rotations age the vector out entirely.
        let snap_c = ring_with_chords(15);
        sweep.ensure_snapshot(&snap_c);
        assert!(sweep.ppr_warm(3).is_none());
        // Budget gating: limit 0 stores nothing.
        sweep.store_ppr(5, vec![0.5; 15], 0);
        assert!(sweep.ppr_warm(5).is_none());
    }

    #[test]
    fn rescal_cache_slots_rotate_and_key_on_fingerprint() {
        let model =
            Arc::new(crate::rescal::Rescal::default().fit(&ring_with_chords(11)).expect("fit"));

        let mut transient = SolverCache::transient();
        transient.ensure_snapshot(&ring_with_chords(11));
        transient.store_rescal(7, Arc::clone(&model));
        assert!(transient.rescal_model(7).is_none(), "transient caches never retain models");

        let mut sweep = SolverCache::sweep();
        sweep.ensure_snapshot(&ring_with_chords(11));
        sweep.store_rescal(7, Arc::clone(&model));
        // Exact reuse on the current snapshot requires a fingerprint match.
        assert!(sweep.rescal_model(7).is_some());
        assert!(sweep.rescal_model(8).is_none(), "different config must never alias a fit");
        assert!(sweep.rescal_warm(7).is_none(), "no previous snapshot yet");
        // Rotation: the model becomes the next snapshot's warm start only.
        sweep.ensure_snapshot(&ring_with_chords(13));
        assert!(sweep.rescal_model(7).is_none());
        assert!(sweep.rescal_warm(7).is_some());
        assert!(sweep.rescal_warm(8).is_none());
        // A second rotation ages it out entirely.
        sweep.ensure_snapshot(&ring_with_chords(15));
        assert!(sweep.rescal_warm(7).is_none());
    }

    #[test]
    fn bilinear_scores_match_model_oracle_at_every_thread_count() {
        let snap = ring_with_chords(24);
        let rescal = crate::rescal::Rescal { rank: 4, ..Default::default() };
        let model = rescal.fit(&snap).expect("fit");
        let pairs = all_pairs(24);
        let base = bilinear_scores_t(&model.x, &model.r, &pairs, 1);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let oracle = model.score(u, v);
            assert!(
                (base[i] - oracle).abs() <= 1e-9 * oracle.abs().max(1.0),
                "pair ({u},{v}): batched {} vs oracle {oracle}",
                base[i]
            );
        }
        for threads in [2usize, 4, 8] {
            assert_eq!(
                bilinear_scores_t(&model.x, &model.r, &pairs, threads),
                base,
                "bilinear scoring diverged at {threads} threads"
            );
        }
    }
}
