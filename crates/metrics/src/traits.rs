//! The `Metric` trait and its candidate policy.

use crate::candidates::CandidateSet;
use crate::exec::{self, ExecMode, PairScorer, ScoreAll};
use osn_graph::snapshot::Snapshot;
use osn_graph::NodeId;

/// How far from each other a pair of nodes may be for this metric to give
/// it a non-trivial score. The evaluation framework uses the *loosest*
/// policy among the metrics under test to build one shared candidate set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CandidatePolicy {
    /// Non-zero only for pairs sharing ≥ 1 neighbor (distance exactly 2).
    TwoHop,
    /// Non-zero up to distance 3 (Local Path, SP, walks, Katz).
    ThreeHop,
    /// May rank arbitrary pairs (PA, Rescal) — the candidate set adds
    /// supernode cross-pairs on top of the distance-bounded pairs.
    Global,
}

/// What the engine may assume about every score a metric emits. Checked by
/// the runtime audit layer ([`osn_graph::audit`]) on every engine scoring
/// path when audits are enabled (debug builds, or `--paranoid` in release).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScoreContract {
    /// Scores are finite (no NaN/±∞) but may be negative: negated
    /// distances (SP), log-odds (the Bayes metrics), and factorization
    /// reconstructions (Katz-lr, Rescal) all go below zero.
    Finite,
    /// Scores are finite and never negative: counting and normalized-
    /// counting metrics (CN, JC, AA, RA, PA, Local Path) and walk
    /// probabilities (LRW, PPR).
    FiniteNonNegative,
}

/// One link-prediction similarity metric (Table 3 of the paper).
///
/// Implementations are stateless configuration objects: all per-snapshot
/// state (factorizations, walk distributions, triangle counts) is computed
/// inside [`score_pairs`](Metric::score_pairs) for the snapshot at hand.
/// Callers amortize that cost by scoring all pairs of interest in a single
/// call.
pub trait Metric: Sync {
    /// Display name matching the paper's tables ("BRA", "Katz-lr", …).
    fn name(&self) -> &'static str;

    /// Candidate policy (see [`CandidatePolicy`]).
    fn candidate_policy(&self) -> CandidatePolicy;

    /// Score contract the audit layer enforces (see [`ScoreContract`]).
    /// Defaults to [`ScoreContract::Finite`]; metrics whose scores are
    /// counts, normalized counts, or probabilities tighten this to
    /// [`ScoreContract::FiniteNonNegative`].
    fn score_contract(&self) -> ScoreContract {
        ScoreContract::Finite
    }

    /// Scores a batch of (unconnected) pairs against a snapshot. Returns
    /// one finite score per pair, higher = more likely to connect.
    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64>;

    /// How the parallel engine executes this metric (see
    /// [`ExecMode`]). Chunked by default; metrics whose batch algorithm
    /// parallelizes internally (the walk metrics) return `WholeBatch`.
    fn exec_mode(&self) -> ExecMode {
        ExecMode::Chunked
    }

    /// The fused-kernel column this metric maps to, when it is one of the
    /// local metrics the source-batched kernel ([`crate::fused`]) can
    /// absorb. `None` (the default) keeps the metric on its own
    /// [`score_pairs`](Metric::score_pairs) path; the local and Bayes
    /// metrics override this, and the engine then scores them through one
    /// shared witness walk per source instead of per-pair intersections —
    /// bit-identical to the per-pair path.
    fn fused_kind(&self) -> Option<crate::fused::LocalKind> {
        None
    }

    /// Hoists per-snapshot work (factorizations, landmark solves) out of
    /// the chunk loop, returning a read-only scorer the engine calls once
    /// per chunk. The default wraps [`score_pairs`](Metric::score_pairs),
    /// which is correct for any metric without cross-pair state.
    fn prepare<'a>(&'a self, snap: &Snapshot) -> Box<dyn PairScorer + 'a> {
        let _ = snap;
        Box::new(ScoreAll(self))
    }

    /// [`score_pairs`](Metric::score_pairs) with an explicit worker
    /// budget. Only [`ExecMode::WholeBatch`] metrics override this — the
    /// engine parallelizes Chunked metrics itself.
    fn score_pairs_t(
        &self,
        snap: &Snapshot,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Vec<f64> {
        let _ = threads;
        self.score_pairs(snap, pairs)
    }

    /// [`score_pairs_t`](Metric::score_pairs_t) with access to the
    /// per-snapshot [`SolverCache`](crate::solver::SolverCache). The
    /// default ignores the cache; the global walk metrics (LRW, PPR)
    /// override it to share the snapshot's transition view and, on
    /// persistent caches, warm-start PPR from the previous snapshot's
    /// converged vectors (which changes iteration counts, never converged
    /// output beyond the documented tolerance — see [`crate::solver`]).
    fn score_pairs_cached(
        &self,
        snap: &Snapshot,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
        cache: &mut crate::solver::SolverCache,
    ) -> Vec<f64> {
        let _ = cache;
        self.score_pairs_t(snap, pairs, threads)
    }

    /// [`prepare`](Metric::prepare) with read access to the per-snapshot
    /// [`SolverCache`](crate::solver::SolverCache), so Chunked metrics
    /// whose per-snapshot stage runs on the adjacency matrix (the Katz
    /// family) can reuse the cache's shared [`crate::solver::TransitionView`]
    /// instead of rebuilding CSR structure. Read-only: prepare runs in
    /// parallel across metrics.
    fn prepare_cached<'a>(
        &'a self,
        snap: &Snapshot,
        cache: &crate::solver::SolverCache,
    ) -> Box<dyn PairScorer + 'a> {
        let _ = cache;
        self.prepare(snap)
    }

    /// Predicts the top-`k` pairs from a pre-built candidate set, with
    /// seeded tie-breaking (ties are common for SP and CN). Runs on the
    /// parallel engine with [`osn_graph::par::max_threads`] workers; the
    /// result is bit-identical for every worker count.
    fn predict_top_k(
        &self,
        snap: &Snapshot,
        cands: &CandidateSet,
        k: usize,
        seed: u64,
    ) -> Vec<(NodeId, NodeId)> {
        exec::predict_top_k_t(self, snap, cands, k, seed, osn_graph::par::max_threads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_ordering_is_loosest_last() {
        assert!(CandidatePolicy::TwoHop < CandidatePolicy::ThreeHop);
        assert!(CandidatePolicy::ThreeHop < CandidatePolicy::Global);
    }
}
