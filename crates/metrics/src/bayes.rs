//! Local naive Bayes metrics (Liu & Zhou \[26\]): BCN, BAA, BRA.
//!
//! The local naive Bayes model re-weights each common neighbor `w` by how
//! much more often it closes triangles than it leaves them open:
//!
//! * `s = |V|(|V|−1)/(2|E|) − 1` — the graph-level prior odds;
//! * `R_w = (N_△w + 1) / (N_∧w + 1)` — `w`'s triangle vs open-wedge odds,
//!   where `N_∧w = C(deg w, 2) − N_△w`;
//! * BCN(u,v) = `|Γ(u)∩Γ(v)|·log s + Σ_w log R_w`;
//! * BAA / BRA re-use AA's / RA's witness weights on `(log s + log R_w)`.
//!
//! Scores can be negative (they are log-odds); only the ranking matters.

use crate::fused::LocalKind;
use crate::traits::{CandidatePolicy, Metric};
use osn_graph::snapshot::Snapshot;
use osn_graph::{stats, NodeId};

/// Precomputed per-snapshot naive-Bayes quantities. Shared with the fused
/// kernel (`crate::fused`), which builds its BAA/BRA weight tables on top.
pub(crate) struct BayesContext {
    pub(crate) log_s: f64,
    /// `log R_w` per node.
    pub(crate) log_r: Vec<f64>,
}

impl BayesContext {
    pub(crate) fn build(snap: &Snapshot) -> Self {
        let n = snap.node_count() as f64;
        let e = snap.edge_count() as f64;
        // Guard tiny graphs: s must stay positive for the log.
        let s = (n * (n - 1.0) / (2.0 * e.max(1.0)) - 1.0).max(1e-9);
        let tri = stats::triangle_counts(snap);
        let log_r = (0..snap.node_count())
            .map(|w| {
                let d = snap.degree(w as NodeId) as f64;
                let wedges = d * (d - 1.0) / 2.0;
                let t = tri[w] as f64;
                ((t + 1.0) / ((wedges - t) + 1.0)).ln()
            })
            .collect();
        BayesContext { log_s: s.ln(), log_r }
    }
}

/// Local-naive-Bayes Common Neighbors (BCN) \[26\].
pub struct BayesCommonNeighbors;

impl Metric for BayesCommonNeighbors {
    fn name(&self) -> &'static str {
        "BCN"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::TwoHop
    }

    fn fused_kind(&self) -> Option<LocalKind> {
        Some(LocalKind::Bcn)
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        let ctx = BayesContext::build(snap);
        pairs
            .iter()
            .map(|&(u, v)| {
                let mut cn = 0usize;
                let mut acc = 0.0;
                // linklens-allow(per-pair-intersection): reference implementation; the engine routes batches through the fused kernel
                for w in snap.common_neighbors(u, v) {
                    cn += 1;
                    acc += ctx.log_r[w as usize];
                }
                cn as f64 * ctx.log_s + acc
            })
            .collect()
    }
}

/// Local-naive-Bayes Adamic/Adar (BAA) \[26\].
pub struct BayesAdamicAdar;

impl Metric for BayesAdamicAdar {
    fn name(&self) -> &'static str {
        "BAA"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::TwoHop
    }

    fn fused_kind(&self) -> Option<LocalKind> {
        Some(LocalKind::Baa)
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        let ctx = BayesContext::build(snap);
        pairs
            .iter()
            .map(|&(u, v)| {
                // linklens-allow(per-pair-intersection): reference implementation; the engine routes batches through the fused kernel
                snap.common_neighbors(u, v)
                    .map(|w| (ctx.log_s + ctx.log_r[w as usize]) / (snap.degree(w) as f64).ln())
                    .sum()
            })
            .collect()
    }
}

/// Local-naive-Bayes Resource Allocation (BRA) \[26\] — the strongest metric
/// on Renren in the paper.
pub struct BayesResourceAllocation;

impl Metric for BayesResourceAllocation {
    fn name(&self) -> &'static str {
        "BRA"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::TwoHop
    }

    fn fused_kind(&self) -> Option<LocalKind> {
        Some(LocalKind::Bra)
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        let ctx = BayesContext::build(snap);
        pairs
            .iter()
            .map(|&(u, v)| {
                // linklens-allow(per-pair-intersection): reference implementation; the engine routes batches through the fused kernel
                snap.common_neighbors(u, v)
                    .map(|w| (ctx.log_s + ctx.log_r[w as usize]) / snap.degree(w) as f64)
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fixture where witness quality differs: witness 1 closes its only
    /// wedge into a triangle; witness 5 has the same degree but an open
    /// wedge structure.
    ///
    /// 0-1, 1-2, 0-2 (triangle), plus 3-5, 5-4 (open wedge), 0-3? no.
    fn closing_vs_open() -> Snapshot {
        Snapshot::from_edges(7, &[(0, 1), (1, 2), (0, 2), (3, 5), (5, 4), (0, 6), (6, 2)])
    }

    #[test]
    fn r_weight_prefers_triangle_closers() {
        let s = closing_vs_open();
        let ctx = BayesContext::build(&s);
        // Node 1: deg 2, 1 triangle, 0 open wedges → R = 2/1 = 2.
        assert!((ctx.log_r[1] - 2.0_f64.ln()).abs() < 1e-12);
        // Node 5: deg 2, 0 triangles, 1 open wedge → R = 1/2.
        assert!((ctx.log_r[5] - 0.5_f64.ln()).abs() < 1e-12);
        assert!(ctx.log_r[1] > ctx.log_r[5]);
    }

    #[test]
    fn bcn_ranks_witness_quality() {
        // Pairs (3,4) via open-wedge witness 5 vs a triangle-closing
        // witness of equal degree: node 6 (deg 2, sits in wedge 0-6-2 where
        // 0-2 is an edge → 1 triangle). Pair (0,2) is an edge; use the
        // wedge pair that 6 would close next: none unconnected — instead
        // compare (3,4) against an equal-CN pair witnessed by node 1.
        // Both witnesses have degree 2, so plain CN ties them; BCN must not.
        let s = closing_vs_open();
        let scores = BayesCommonNeighbors.score_pairs(&s, &[(3, 4)]);
        // Witness 5 has log R < 0, so BCN < log s · 1.
        let ctx = BayesContext::build(&s);
        assert!(scores[0] < ctx.log_s);
    }

    #[test]
    fn all_bayes_metrics_zero_without_common_neighbors() {
        let s = closing_vs_open();
        let pair = [(3, 6)]; // no shared neighbor
        assert_eq!(BayesCommonNeighbors.score_pairs(&s, &pair), vec![0.0]);
        assert_eq!(BayesAdamicAdar.score_pairs(&s, &pair), vec![0.0]);
        assert_eq!(BayesResourceAllocation.score_pairs(&s, &pair), vec![0.0]);
    }

    #[test]
    fn baa_bra_share_sign_structure_with_bcn() {
        let s = closing_vs_open();
        let pairs = [(3, 4), (0, 4)];
        let bcn = BayesCommonNeighbors.score_pairs(&s, &pairs);
        let baa = BayesAdamicAdar.score_pairs(&s, &pairs);
        let bra = BayesResourceAllocation.score_pairs(&s, &pairs);
        for i in 0..pairs.len() {
            assert_eq!(bcn[i] == 0.0, baa[i] == 0.0);
            assert_eq!(baa[i] == 0.0, bra[i] == 0.0);
        }
    }

    #[test]
    fn dense_graph_prior_is_guarded() {
        // Complete graph minus one edge: s would be ≤ 0 without the guard.
        let s = Snapshot::from_edges(3, &[(0, 1), (1, 2)]);
        let scores = BayesCommonNeighbors.score_pairs(&s, &[(0, 2)]);
        assert!(scores[0].is_finite());
    }

    #[test]
    fn scores_symmetric() {
        let s = closing_vs_open();
        for m in [&BayesCommonNeighbors as &dyn Metric, &BayesAdamicAdar, &BayesResourceAllocation]
        {
            let a = m.score_pairs(&s, &[(3, 4)])[0];
            let b = m.score_pairs(&s, &[(4, 3)])[0];
            assert_eq!(a, b, "{} asymmetric", m.name());
        }
    }
}
