//! The Katz index \[18\] and the two scalable implementations the paper
//! compares: low-rank approximation (Katz-lr, after Acar et al. \[1\]) and
//! scalable proximity estimation via landmarks (Katz-sc, after Song et
//! al. \[38\]).
//!
//! Exact Katz is `K = Σ_{l≥1} βˡ Aˡ = (I − βA)⁻¹ − I`, infeasible beyond
//! toy graphs. With the symmetric eigendecomposition `A = U Λ Uᵀ`:
//! `K = U (1/(1−βλ) − 1) Uᵀ`, so a rank-r Lanczos factorization gives the
//! Katz-lr scores in O(r) per pair. Katz-sc instead takes a Nyström-style
//! landmark approximation: with `C = K[:, L]` (truncated-series columns for
//! a landmark set `L`) and `W = K[L, L]`, `K ≈ C W⁺ Cᵀ`.

use crate::exec::PairScorer;
use crate::solver::SolverCache;
use crate::traits::{CandidatePolicy, Metric};
use osn_graph::snapshot::Snapshot;
use osn_graph::{par, NodeId};
use osn_linalg::lanczos::lanczos_top_k_t;
use osn_linalg::{Matrix, SparseMatrix};

/// Shared Katz attenuation default (the paper uses β = 0.001 after \[1\]).
pub const DEFAULT_BETA: f64 = 1e-3;

fn adjacency(snap: &Snapshot) -> SparseMatrix {
    let edges: Vec<(u32, u32)> = snap.edges().collect();
    SparseMatrix::adjacency(snap.node_count(), &edges)
}

/// Low-rank Katz (Katz-lr): rank-`rank` Lanczos eigendecomposition of the
/// adjacency, scored as `Σ_k f(λ_k) U[u,k] U[v,k]` with
/// `f(λ) = 1/(1 − βλ) − 1`.
///
/// The spectral transform requires `βλ_max < 1`; with β = 1e-3 that holds
/// for any graph with maximum degree below 1000-ish, and the factor is
/// clamped defensively otherwise.
#[derive(Clone, Debug)]
pub struct KatzLr {
    /// Attenuation factor β.
    pub beta: f64,
    /// Eigenpair count r.
    pub rank: usize,
    /// Lanczos iteration cap.
    pub max_iter: usize,
    /// Deterministic start-vector seed.
    pub seed: u64,
}

impl Default for KatzLr {
    fn default() -> Self {
        KatzLr { beta: DEFAULT_BETA, rank: 48, max_iter: 160, seed: 1 }
    }
}

/// Prepared Katz-lr state: spectral factors computed once per snapshot;
/// every chunk is O(r) dot products per pair.
struct KatzLrScorer {
    factors: Vec<f64>,
    vectors: Matrix,
}

impl PairScorer for KatzLrScorer {
    fn score_chunk(&self, _snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        let r = self.factors.len();
        pairs
            .iter()
            .map(|&(u, v)| {
                (0..r)
                    .map(|k| {
                        self.factors[k]
                            * self.vectors[(u as usize, k)]
                            * self.vectors[(v as usize, k)]
                    })
                    .sum()
            })
            .collect()
    }
}

impl Metric for KatzLr {
    fn name(&self) -> &'static str {
        "Katz-lr"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::ThreeHop
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        // linklens-allow(refit-in-score-pairs): one-shot convenience entry; the engine hoists via prepare_cached
        self.prepare(snap).score_chunk(snap, pairs)
    }

    fn prepare<'a>(&'a self, snap: &Snapshot) -> Box<dyn PairScorer + 'a> {
        if snap.edge_count() == 0 {
            return Box::new(KatzLrScorer {
                factors: Vec::new(),
                vectors: Matrix::zeros(snap.node_count().max(1), 0),
            });
        }
        let a = adjacency(snap);
        self.prepare_from(snap, &a)
    }

    fn prepare_cached<'a>(
        &'a self,
        snap: &Snapshot,
        cache: &SolverCache,
    ) -> Box<dyn PairScorer + 'a> {
        if snap.edge_count() == 0 {
            return self.prepare(snap);
        }
        // Reuse the snapshot's shared adjacency CSR instead of rebuilding
        // it from triplets (the cache owner pointed it at `snap`).
        match cache.transition() {
            Some(tv) if tv.node_count() == snap.node_count() => {
                self.prepare_from(snap, tv.adjacency())
            }
            _ => self.prepare(snap),
        }
    }
}

impl KatzLr {
    /// Factorization stage shared by the cached and uncached prepare
    /// paths; `a` is the snapshot's adjacency.
    fn prepare_from<'a>(&'a self, snap: &Snapshot, a: &SparseMatrix) -> Box<dyn PairScorer + 'a> {
        // Single-start Lanczos recovers one Ritz vector per eigenvalue
        // cluster, so on small graphs (where exact is cheap and spectra are
        // often degenerate by symmetry) use the dense Jacobi solver; the
        // Lanczos path is for large snapshots where extremal clusters are
        // all the ranking needs.
        let eig = if snap.node_count() <= 256 {
            let mut full = osn_linalg::lanczos::jacobi_eigen(&a.to_dense());
            let keep = self.rank.min(full.values.len());
            let mut order: Vec<usize> = (0..full.values.len()).collect();
            // NaN-safe magnitude ordering: total_cmp sorts any NaN
            // deterministically instead of panicking mid-sort.
            order.sort_by(|&i, &j| full.values[j].abs().total_cmp(&full.values[i].abs()));
            let mut vectors = Matrix::zeros(snap.node_count(), keep);
            let mut values = Vec::with_capacity(keep);
            for (out, &col) in order.iter().take(keep).enumerate() {
                values.push(full.values[col]);
                for r in 0..snap.node_count() {
                    vectors[(r, out)] = full.vectors[(r, col)];
                }
            }
            full.values = values;
            full.vectors = vectors;
            full
        } else {
            // Threaded SpMV inside Lanczos is bit-identical for any worker
            // count (see `lanczos_top_k_t`), so the factorization stays
            // deterministic.
            lanczos_top_k_t(
                a,
                self.rank.min(snap.node_count()),
                self.max_iter,
                self.seed,
                par::max_threads(),
            )
        };
        // f(λ) = 1/(1-βλ) - 1, clamped away from the pole.
        let factors: Vec<f64> = eig
            .values
            .iter()
            .map(|&l| {
                let denom = (1.0 - self.beta * l).max(0.05);
                1.0 / denom - 1.0
            })
            .collect();
        Box::new(KatzLrScorer { factors, vectors: eig.vectors })
    }
}

/// Scalable-proximity Katz (Katz-sc): Nyström approximation through
/// `landmarks` landmark nodes (half top-degree, half stride-spread), with
/// landmark Katz columns computed by a `series_terms`-term truncated series
/// (each term one SpMV).
#[derive(Clone, Debug)]
pub struct KatzSc {
    /// Attenuation factor β.
    pub beta: f64,
    /// Number of landmark nodes.
    pub landmarks: usize,
    /// Truncation length of the Katz series for landmark columns.
    pub series_terms: usize,
    /// Ridge added to the landmark Gram block before inversion.
    pub ridge: f64,
}

impl Default for KatzSc {
    fn default() -> Self {
        KatzSc { beta: DEFAULT_BETA, landmarks: 48, series_terms: 5, ridge: 1e-10 }
    }
}

impl KatzSc {
    /// Picks landmark node ids: the top half by degree plus an
    /// evenly-strided sweep over the rest (Song et al. pick high-degree
    /// landmarks; the strided half guards low-degree regions).
    pub fn pick_landmarks(&self, snap: &Snapshot) -> Vec<NodeId> {
        let n = snap.node_count();
        let l = self.landmarks.min(n);
        let mut by_degree: Vec<NodeId> = (0..n as NodeId).collect();
        by_degree.sort_unstable_by_key(|&u| std::cmp::Reverse(snap.degree(u)));
        let mut picked: Vec<NodeId> = by_degree[..l.div_ceil(2)].to_vec();
        let stride = (n / l.max(1)).max(1);
        let mut u = 0usize;
        while picked.len() < l && u < n {
            let cand = u as NodeId;
            if !picked.contains(&cand) {
                picked.push(cand);
            }
            u += stride;
        }
        // Fallback fill for tiny graphs.
        let mut u = 0;
        while picked.len() < l {
            if !picked.contains(&(u as NodeId)) {
                picked.push(u as NodeId);
            }
            u += 1;
        }
        picked.sort_unstable();
        picked
    }
}

/// Prepared Katz-sc state: landmark columns `C` and the solved mixing rows
/// `M = C (W + δI)⁻¹`, computed once per snapshot. `m_rows = None` marks
/// both the empty-graph case (`C` empty) and the singular-landmark
/// fallback, which scores through `C` alone.
struct KatzScScorer {
    c: Matrix,
    m_rows: Option<Vec<Vec<f64>>>,
}

impl PairScorer for KatzScScorer {
    fn score_chunk(&self, _snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        let l = self.c.cols();
        if l == 0 {
            return vec![0.0; pairs.len()];
        }
        match &self.m_rows {
            // score(u, v) = M[u, :] · C[v, :]  (≈ K[u, v]).
            Some(m_rows) => pairs
                .iter()
                .map(|&(u, v)| {
                    let mu = &m_rows[u as usize];
                    let cv = self.c.row(v as usize);
                    mu.iter().zip(cv).map(|(a, b)| a * b).sum()
                })
                .collect(),
            // Singular landmark block even after ridge: fall back to the
            // truncated series scores via the diagonal (no mixing).
            None => pairs
                .iter()
                .map(|&(u, v)| {
                    // crude fallback: average of available landmark columns
                    let mut s = 0.0;
                    for j in 0..l {
                        s += self.c[(u as usize, j)] * self.c[(v as usize, j)];
                    }
                    s
                })
                .collect(),
        }
    }
}

impl Metric for KatzSc {
    fn name(&self) -> &'static str {
        "Katz-sc"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::ThreeHop
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        // linklens-allow(refit-in-score-pairs): one-shot convenience entry; the engine hoists via prepare_cached
        self.prepare(snap).score_chunk(snap, pairs)
    }

    fn prepare<'a>(&'a self, snap: &Snapshot) -> Box<dyn PairScorer + 'a> {
        let n = snap.node_count();
        if snap.edge_count() == 0 || n == 0 {
            return Box::new(KatzScScorer { c: Matrix::zeros(n.max(1), 0), m_rows: None });
        }
        let a = adjacency(snap);
        self.prepare_from(snap, &a)
    }

    fn prepare_cached<'a>(
        &'a self,
        snap: &Snapshot,
        cache: &SolverCache,
    ) -> Box<dyn PairScorer + 'a> {
        if snap.edge_count() == 0 || snap.node_count() == 0 {
            return self.prepare(snap);
        }
        // Reuse the snapshot's shared adjacency CSR instead of rebuilding
        // it from triplets (the cache owner pointed it at `snap`).
        match cache.transition() {
            Some(tv) if tv.node_count() == snap.node_count() => {
                self.prepare_from(snap, tv.adjacency())
            }
            _ => self.prepare(snap),
        }
    }
}

impl KatzSc {
    /// Landmark stage shared by the cached and uncached prepare paths.
    fn prepare_from<'a>(&'a self, snap: &Snapshot, a: &SparseMatrix) -> Box<dyn PairScorer + 'a> {
        let lm = self.pick_landmarks(snap);
        let c = self.landmark_columns(a, &lm, par::max_threads());
        self.scorer_from_columns(&lm, c)
    }

    /// Per-source reference prepare: identical landmark/mixing stages but
    /// columns built by [`landmark_columns_per_source`]
    /// (Self::landmark_columns_per_source). The columns are bit-identical
    /// to the batched SpMM build, so the returned scorer's output is too —
    /// kept as the oracle the bench and equivalence tests pin against.
    pub fn prepare_per_source<'a>(&'a self, snap: &Snapshot) -> Box<dyn PairScorer + 'a> {
        let n = snap.node_count();
        if snap.edge_count() == 0 || n == 0 {
            return self.prepare(snap);
        }
        let a = adjacency(snap);
        let lm = self.pick_landmarks(snap);
        let c = self.landmark_columns_per_source(&a, &lm);
        self.scorer_from_columns(&lm, c)
    }

    /// Mixing stage shared by every column-building path:
    /// `W = C[lm, :]`, `M = C (W + δI)⁻¹`.
    fn scorer_from_columns(&self, lm: &[NodeId], c: Matrix) -> Box<dyn PairScorer + 'static> {
        let l = lm.len();
        let mut w = Matrix::zeros(l, l);
        for (r_out, &lr) in lm.iter().enumerate() {
            for j in 0..l {
                w[(r_out, j)] = c[(lr as usize, j)];
            }
            w[(r_out, r_out)] += self.ridge;
        }
        // Solve (W + δI) Y = Cᵀ column-block-wise: rhs per graph node.
        let rhs: Vec<Vec<f64>> = (0..c.rows()).map(|i| c.row(i).to_vec()).collect();
        let m_rows = w.solve_many(&rhs);
        Box::new(KatzScScorer { c, m_rows })
    }

    /// Truncated Katz columns for all landmarks at once:
    /// `C[:, j] = Σ_{i=1..T} βⁱ Aⁱ e_{lm[j]}`, each series term one SpMM
    /// over the `n × l` block, so `A`'s CSR is swept `T` times total
    /// instead of `T` times per landmark. Bit-identical per column to
    /// [`landmark_columns_per_source`](Self::landmark_columns_per_source)
    /// for every thread count (the row fold visits the same neighbors in
    /// the same ascending order).
    pub fn landmark_columns(&self, a: &SparseMatrix, lm: &[NodeId], threads: usize) -> Matrix {
        let n = a.rows();
        let l = lm.len();
        let mut x = Matrix::zeros(n, l);
        for (j, &src) in lm.iter().enumerate() {
            x[(src as usize, j)] = 1.0;
        }
        let mut next = Matrix::zeros(n, l);
        let mut c = Matrix::zeros(n, l);
        let mut weight = 1.0;
        for _ in 0..self.series_terms {
            a.spmm_into_t(&x, &mut next, threads);
            std::mem::swap(&mut x, &mut next);
            weight *= self.beta;
            for (av, &cv) in c.data_mut().iter_mut().zip(x.data()) {
                *av += weight * cv;
            }
        }
        c
    }

    /// Per-landmark reference for [`landmark_columns`](Self::landmark_columns):
    /// the original one-SpMV-per-term-per-landmark loop, kept as the
    /// oracle the batched SpMM path is pinned against.
    pub fn landmark_columns_per_source(&self, a: &SparseMatrix, lm: &[NodeId]) -> Matrix {
        let n = a.rows();
        let l = lm.len();
        let mut c = Matrix::zeros(n, l);
        let mut col = vec![0.0; n];
        let mut next = vec![0.0; n];
        for (j, &src) in lm.iter().enumerate() {
            col.iter_mut().for_each(|x| *x = 0.0);
            col[src as usize] = 1.0;
            let mut weight = 1.0;
            let mut acc = vec![0.0; n];
            for _ in 0..self.series_terms {
                a.matvec_into(&col, &mut next);
                std::mem::swap(&mut col, &mut next);
                weight *= self.beta;
                for (av, &cv) in acc.iter_mut().zip(col.iter()) {
                    *av += weight * cv;
                }
            }
            for (i, &v) in acc.iter().enumerate() {
                c[(i, j)] = v;
            }
        }
        c
    }
}

/// Exact truncated Katz (dense reference; tests and toy graphs only).
pub fn exact_katz_truncated(snap: &Snapshot, beta: f64, terms: usize) -> Matrix {
    let n = snap.node_count();
    let a = adjacency(snap).to_dense();
    let mut power = Matrix::identity(n);
    let mut acc = Matrix::zeros(n, n);
    let mut weight = 1.0;
    for _ in 0..terms {
        power = power.matmul(&a);
        weight *= beta;
        let term = &power * weight;
        acc = &acc + &term;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles bridged: 0-1-2 triangle, 3-4-5 triangle, bridge 2-3.
    fn fixture() -> Snapshot {
        Snapshot::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    /// Dense exact Katz via (I − βA)⁻¹ − I, small graphs only.
    fn exact_katz(snap: &Snapshot, beta: f64) -> Matrix {
        let n = snap.node_count();
        let a = adjacency(snap).to_dense();
        let mut i_minus = Matrix::identity(n);
        for r in 0..n {
            for c in 0..n {
                i_minus[(r, c)] -= beta * a[(r, c)];
            }
        }
        // Invert by solving against identity columns.
        let rhs: Vec<Vec<f64>> =
            (0..n).map(|j| (0..n).map(|i| f64::from(u8::from(i == j))).collect()).collect();
        let cols = i_minus.solve_many(&rhs).expect("I - βA invertible for small β");
        let mut inv = Matrix::zeros(n, n);
        for (j, coljj) in cols.iter().enumerate() {
            for i in 0..n {
                inv[(i, j)] = coljj[i];
            }
        }
        for d in 0..n {
            inv[(d, d)] -= 1.0;
        }
        inv
    }

    #[test]
    fn katz_lr_full_rank_matches_exact() {
        let s = fixture();
        let beta = 0.05; // large enough that scores are well above noise
        let lr = KatzLr { beta, rank: 6, max_iter: 60, seed: 3 };
        let exact = exact_katz(&s, beta);
        let pairs = [(0, 3), (0, 4), (1, 5), (2, 4)];
        let got = lr.score_pairs(&s, &pairs);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let want = exact[(u as usize, v as usize)];
            assert!((got[i] - want).abs() < 1e-6, "pair ({u},{v}): got {} want {want}", got[i]);
        }
    }

    #[test]
    fn katz_lr_ranks_near_over_far() {
        let s = fixture();
        let lr = KatzLr::default();
        let scores = lr.score_pairs(&s, &[(1, 3), (1, 5)]);
        assert!(scores[0] > scores[1], "distance-2 pair must beat distance-3");
    }

    #[test]
    fn katz_sc_all_landmarks_matches_truncated_series() {
        // With every node a landmark, the Nyström identity C W⁻¹ Cᵀ = K_T
        // holds exactly (K_T = truncated Katz) when W is invertible.
        let s = fixture();
        let beta = 0.05;
        let terms = 5;
        let sc = KatzSc { beta, landmarks: 6, series_terms: terms, ridge: 1e-12 };
        let exact = exact_katz_truncated(&s, beta, terms);
        let pairs = [(0, 3), (0, 4), (1, 5)];
        let got = sc.score_pairs(&s, &pairs);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let want = exact[(u as usize, v as usize)];
            assert!((got[i] - want).abs() < 1e-6, "pair ({u},{v}): got {} want {want}", got[i]);
        }
    }

    #[test]
    fn katz_sc_few_landmarks_still_ranks_sanely() {
        let s = fixture();
        let sc = KatzSc { landmarks: 3, ..Default::default() };
        let scores = sc.score_pairs(&s, &[(1, 3), (1, 5)]);
        assert!(scores[0] > scores[1]);
    }

    #[test]
    fn landmark_selection_is_dedup_and_sized() {
        let s = fixture();
        let sc = KatzSc { landmarks: 4, ..Default::default() };
        let lm = sc.pick_landmarks(&s);
        assert_eq!(lm.len(), 4);
        let mut d = lm.clone();
        d.dedup();
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn empty_graph_scores_zero() {
        let s = Snapshot::from_edges(3, &[(0, 1)]);
        // Not empty, but test the guard path via a pair on a fresh snapshot.
        let lr = KatzLr::default();
        let scores = lr.score_pairs(&s, &[(0, 2)]);
        assert!(scores[0].abs() < 1e-9, "no path 0→2 exists");
    }

    #[test]
    fn landmark_columns_batched_matches_per_source_bitwise() {
        let s = fixture();
        let a = adjacency(&s);
        let sc = KatzSc { landmarks: 4, ..Default::default() };
        let lm = sc.pick_landmarks(&s);
        let want = sc.landmark_columns_per_source(&a, &lm);
        for threads in [1, 2, 4] {
            let got = sc.landmark_columns(&a, &lm, threads);
            assert_eq!(got.data(), want.data(), "threads={threads}");
        }
    }

    #[test]
    fn transition_view_adjacency_matches_triplet_build() {
        // prepare_cached swaps the triplet-built adjacency for the cache's
        // shared TransitionView CSR; they must be structurally identical.
        let s = fixture();
        let a = adjacency(&s);
        let mut cache = SolverCache::transient();
        cache.ensure_snapshot(&s);
        let tv = cache.transition().unwrap();
        let b = tv.adjacency();
        assert_eq!(a.rows(), b.rows());
        for i in 0..a.rows() {
            assert_eq!(a.row(i), b.row(i), "row {i}");
        }
    }

    #[test]
    fn prepare_cached_scores_match_uncached() {
        let s = fixture();
        let pairs = [(0u32, 3u32), (0, 4), (1, 5), (2, 4)];
        let mut cache = SolverCache::transient();
        cache.ensure_snapshot(&s);
        let lr = KatzLr::default();
        assert_eq!(
            lr.prepare_cached(&s, &cache).score_chunk(&s, &pairs),
            lr.prepare(&s).score_chunk(&s, &pairs),
        );
        let sc = KatzSc::default();
        assert_eq!(
            sc.prepare_cached(&s, &cache).score_chunk(&s, &pairs),
            sc.prepare(&s).score_chunk(&s, &pairs),
        );
    }

    #[test]
    fn exact_truncated_reference_matches_hand_count() {
        // Path 0-1-2: K_2[0][2] = β²·(# 2-walks) = β².
        let s = Snapshot::from_edges(3, &[(0, 1), (1, 2)]);
        let k = exact_katz_truncated(&s, 0.1, 2);
        assert!((k[(0, 2)] - 0.01).abs() < 1e-12);
        assert!((k[(0, 1)] - 0.1).abs() < 1e-12);
    }
}
