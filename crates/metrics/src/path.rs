//! Path-based metrics: Shortest Path (SP) and Local Path (LP).
//!
//! Production scoring batches sources: SP walks up to 64 BFS sources at
//! once through [`traversal::MultiSourceBfs`] (one edge touch per combined
//! frontier level instead of per source), and LP reads its 2-walk counts
//! from the epoch-stamped [`traversal::Walk2Scan`] scatter core. Distances
//! and counts are exact integers, so both paths are bit-identical to the
//! retained per-source references ([`ShortestPath::score_pairs_per_source`],
//! [`LocalPath::score_pairs_per_source`]).

use crate::traits::{CandidatePolicy, Metric, ScoreContract};
use osn_graph::snapshot::Snapshot;
use osn_graph::{traversal, NodeId};

/// Groups `pairs` by first endpoint: returns the index permutation sorted
/// by source plus the contiguous range of each distinct source.
fn source_groups(pairs: &[(NodeId, NodeId)]) -> (Vec<usize>, Vec<std::ops::Range<usize>>) {
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    order.sort_unstable_by_key(|&i| pairs[i].0);
    let mut groups = Vec::new();
    let mut i = 0;
    while i < order.len() {
        let u = pairs[order[i]].0;
        let mut j = i;
        while j < order.len() && pairs[order[j]].0 == u {
            j += 1;
        }
        groups.push(i..j);
        i = j;
    }
    (order, groups)
}

/// Shortest Path: the score is the *negated* BFS hop count, so closer pairs
/// rank higher. The paper notes SP effectively reduces to a random pick
/// among 2-hop pairs — all of which tie at distance 2 — which is exactly
/// what the seeded tie-breaking in [`crate::topk`] reproduces (§4.2).
#[derive(Clone, Debug)]
pub struct ShortestPath {
    /// BFS depth cap; pairs farther apart score `-(max_depth + 1)`.
    pub max_depth: u32,
}

impl Default for ShortestPath {
    fn default() -> Self {
        ShortestPath { max_depth: 6 }
    }
}

impl Metric for ShortestPath {
    fn name(&self) -> &'static str {
        "SP"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::ThreeHop
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        // Batch up to 64 distinct sources per multi-source BFS: one edge
        // touch per combined frontier level instead of one BFS per source.
        let n = snap.node_count();
        let (order, groups) = source_groups(pairs);
        let unreached = -f64::from(self.max_depth + 1);
        let mut scores = vec![unreached; pairs.len()];
        let mut bfs = traversal::MultiSourceBfs::new(n);
        // qmask[v]: bits of the current batch's sources querying v,
        // cleared between batches via the touched list.
        let mut qmask = vec![0u64; n];
        let mut qtouched: Vec<NodeId> = Vec::new();
        // (partner, source bit, pair index), sorted so the visit callback
        // can binary-search the partner's query span.
        let mut queries: Vec<(NodeId, usize, usize)> = Vec::new();
        for batch in groups.chunks(64) {
            let sources: Vec<NodeId> = batch.iter().map(|g| pairs[order[g.start]].0).collect();
            queries.clear();
            for (s, g) in batch.iter().enumerate() {
                for &idx in &order[g.clone()] {
                    let v = pairs[idx].1;
                    if qmask[v as usize] == 0 {
                        qtouched.push(v);
                    }
                    qmask[v as usize] |= 1u64 << s;
                    queries.push((v, s, idx));
                }
            }
            queries.sort_unstable();
            bfs.run(snap, &sources, self.max_depth, |v, depth, new_bits| {
                let hits = new_bits & qmask[v as usize];
                if hits == 0 {
                    return;
                }
                let start = queries.partition_point(|q| q.0 < v);
                for &(qv, s, idx) in &queries[start..] {
                    if qv != v {
                        break;
                    }
                    if hits & (1u64 << s) != 0 {
                        scores[idx] = -f64::from(depth);
                    }
                }
            });
            for &v in &qtouched {
                qmask[v as usize] = 0;
            }
            qtouched.clear();
        }
        scores
    }
}

impl ShortestPath {
    /// Per-source reference path: one [`traversal::bfs_distances`] per
    /// distinct source. Kept as the oracle the batched walker is tested
    /// and benchmarked against; not used by the engine.
    pub fn score_pairs_per_source(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        let (order, groups) = source_groups(pairs);
        let mut scores = vec![0.0; pairs.len()];
        for g in groups {
            let u = pairs[order[g.start]].0;
            // linklens-allow(per-source-power-iteration): reference oracle; the engine runs MS-BFS
            let dist = traversal::bfs_distances(snap, u, self.max_depth);
            for &idx in &order[g] {
                let v = pairs[idx].1;
                let d = dist[v as usize];
                scores[idx] =
                    if d == u32::MAX { -f64::from(self.max_depth + 1) } else { -f64::from(d) };
            }
        }
        scores
    }
}

/// Local Path \[45\]: `|paths²(u,v)| + ε·|paths³(u,v)|` with ε = 1e-4.
///
/// `paths²` is the common-neighbor count; `paths³` is the number of length-3
/// walks, computed per source with a scatter buffer (`A²` restricted to the
/// source row), so a batch grouped by source costs
/// O(Σ_{a∈Γ(u)} deg a + Σ deg v) instead of per-pair recomputation.
#[derive(Clone, Debug)]
pub struct LocalPath {
    /// Weight of 3-hop paths (the paper tunes ε = 1e-4).
    pub epsilon: f64,
}

impl Default for LocalPath {
    fn default() -> Self {
        LocalPath { epsilon: 1e-4 }
    }
}

impl Metric for LocalPath {
    fn name(&self) -> &'static str {
        "LP"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::ThreeHop
    }

    fn score_contract(&self) -> ScoreContract {
        ScoreContract::FiniteNonNegative
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        // The shared epoch-stamped scatter core: one 2-walk scan per
        // distinct source, O(1) reset between sources.
        let mut scan = traversal::Walk2Scan::new(snap.node_count());
        let (order, groups) = source_groups(pairs);
        let mut scores = vec![0.0; pairs.len()];
        for g in groups {
            let u = pairs[order[g.start]].0;
            scan.scan(snap, u);
            for &idx in &order[g] {
                let v = pairs[idx].1;
                // paths² = 2-step walks landing exactly on v.
                let p2 = f64::from(scan.count(v));
                // paths³ = Σ_{b ∈ Γ(v)} walk2[b], excluding walks whose
                // middle edge is (u,b) with b = u … for unconnected (u,v)
                // walks cannot revisit the endpoints, so A³ is exact.
                let p3: u32 = snap.neighbors(v).iter().map(|&b| scan.count(b)).sum();
                scores[idx] = p2 + self.epsilon * f64::from(p3);
            }
        }
        scores
    }
}

impl LocalPath {
    /// Per-source reference path with a plain scatter buffer (the original
    /// implementation, independent of [`traversal::Walk2Scan`]'s epoch
    /// discipline). Kept as the oracle the production path is tested
    /// against; not used by the engine.
    pub fn score_pairs_per_source(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        let n = snap.node_count();
        let (order, groups) = source_groups(pairs);
        let mut scores = vec![0.0; pairs.len()];
        // walk2[x] = number of 2-step walks u → x.
        let mut walk2 = vec![0u32; n];
        let mut touched: Vec<NodeId> = Vec::new();
        for g in groups {
            let u = pairs[order[g.start]].0;
            for &a in snap.neighbors(u) {
                for &x in snap.neighbors(a) {
                    if walk2[x as usize] == 0 {
                        touched.push(x);
                    }
                    walk2[x as usize] += 1;
                }
            }
            for &idx in &order[g] {
                let v = pairs[idx].1;
                let p2 = walk2[v as usize] as f64;
                let p3: u32 = snap.neighbors(v).iter().map(|&b| walk2[b as usize]).sum();
                scores[idx] = p2 + self.epsilon * f64::from(p3);
            }
            for &x in &touched {
                walk2[x as usize] = 0;
            }
            touched.clear();
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0-1-2-3-4 plus chord 1-3.
    fn fixture() -> Snapshot {
        Snapshot::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)])
    }

    #[test]
    fn sp_scores_negative_distance() {
        let s = fixture();
        let scores = ShortestPath::default().score_pairs(&s, &[(0, 2), (0, 3), (0, 4)]);
        assert_eq!(scores, vec![-2.0, -2.0, -3.0]);
    }

    #[test]
    fn sp_caps_unreachable() {
        let s = Snapshot::from_edges(4, &[(0, 1), (2, 3)]);
        let sp = ShortestPath { max_depth: 4 };
        assert_eq!(sp.score_pairs(&s, &[(0, 2)]), vec![-5.0]);
    }

    #[test]
    fn lp_counts_two_and_three_paths() {
        let s = fixture();
        let lp = LocalPath { epsilon: 0.01 };
        // Pair (0,2): one 2-path (0-1-2); 3-walks 0→2: 0-1-3-2 → p3 = 1.
        let got = lp.score_pairs(&s, &[(0, 2)])[0];
        assert!((got - (1.0 + 0.01)).abs() < 1e-12, "got {got}");
    }

    #[test]
    fn lp_pure_three_hop_pair() {
        let s = Snapshot::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let lp = LocalPath { epsilon: 0.5 };
        // (0,3): no 2-paths, exactly one 3-path.
        assert_eq!(lp.score_pairs(&s, &[(0, 3)]), vec![0.5]);
    }

    #[test]
    fn lp_multiple_parallel_paths_accumulate() {
        // Two disjoint 2-paths from 0 to 3: via 1 and via 2.
        let s = Snapshot::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
        let lp = LocalPath::default();
        let got = lp.score_pairs(&s, &[(0, 3)])[0];
        assert!((got - 2.0).abs() < 1e-3, "two 2-paths expected, got {got}");
    }

    #[test]
    fn lp_batches_match_single_queries() {
        let s = fixture();
        let lp = LocalPath::default();
        let pairs = [(0, 2), (0, 3), (2, 4), (0, 4)];
        let batch = lp.score_pairs(&s, &pairs);
        for (i, &p) in pairs.iter().enumerate() {
            assert_eq!(lp.score_pairs(&s, &[p])[0], batch[i], "pair {p:?}");
        }
    }

    #[test]
    fn lp_epsilon_zero_reduces_to_cn() {
        let s = fixture();
        let lp = LocalPath { epsilon: 0.0 };
        let pairs = [(0, 2), (0, 3), (2, 4)];
        let got = lp.score_pairs(&s, &pairs);
        let cn = crate::local::CommonNeighbors.score_pairs(&s, &pairs);
        assert_eq!(got, cn);
    }
}
