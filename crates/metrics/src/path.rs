//! Path-based metrics: Shortest Path (SP) and Local Path (LP).

use crate::traits::{CandidatePolicy, Metric, ScoreContract};
use osn_graph::snapshot::Snapshot;
use osn_graph::{traversal, NodeId};

/// Shortest Path: the score is the *negated* BFS hop count, so closer pairs
/// rank higher. The paper notes SP effectively reduces to a random pick
/// among 2-hop pairs — all of which tie at distance 2 — which is exactly
/// what the seeded tie-breaking in [`crate::topk`] reproduces (§4.2).
#[derive(Clone, Debug)]
pub struct ShortestPath {
    /// BFS depth cap; pairs farther apart score `-(max_depth + 1)`.
    pub max_depth: u32,
}

impl Default for ShortestPath {
    fn default() -> Self {
        ShortestPath { max_depth: 6 }
    }
}

impl Metric for ShortestPath {
    fn name(&self) -> &'static str {
        "SP"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::ThreeHop
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        // Group pairs by source so each BFS is shared.
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.sort_unstable_by_key(|&i| pairs[i].0);
        let mut scores = vec![0.0; pairs.len()];
        let mut i = 0;
        while i < order.len() {
            let u = pairs[order[i]].0;
            let mut j = i;
            while j < order.len() && pairs[order[j]].0 == u {
                j += 1;
            }
            let dist = traversal::bfs_distances(snap, u, self.max_depth);
            for &idx in &order[i..j] {
                let v = pairs[idx].1;
                let d = dist[v as usize];
                scores[idx] =
                    if d == u32::MAX { -f64::from(self.max_depth + 1) } else { -f64::from(d) };
            }
            i = j;
        }
        scores
    }
}

/// Local Path \[45\]: `|paths²(u,v)| + ε·|paths³(u,v)|` with ε = 1e-4.
///
/// `paths²` is the common-neighbor count; `paths³` is the number of length-3
/// walks, computed per source with a scatter buffer (`A²` restricted to the
/// source row), so a batch grouped by source costs
/// O(Σ_{a∈Γ(u)} deg a + Σ deg v) instead of per-pair recomputation.
#[derive(Clone, Debug)]
pub struct LocalPath {
    /// Weight of 3-hop paths (the paper tunes ε = 1e-4).
    pub epsilon: f64,
}

impl Default for LocalPath {
    fn default() -> Self {
        LocalPath { epsilon: 1e-4 }
    }
}

impl Metric for LocalPath {
    fn name(&self) -> &'static str {
        "LP"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::ThreeHop
    }

    fn score_contract(&self) -> ScoreContract {
        ScoreContract::FiniteNonNegative
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        let n = snap.node_count();
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.sort_unstable_by_key(|&i| pairs[i].0);
        let mut scores = vec![0.0; pairs.len()];
        // walk2[x] = number of 2-step walks u → x.
        let mut walk2 = vec![0u32; n];
        let mut touched: Vec<NodeId> = Vec::new();
        let mut i = 0;
        while i < order.len() {
            let u = pairs[order[i]].0;
            let mut j = i;
            while j < order.len() && pairs[order[j]].0 == u {
                j += 1;
            }
            for &a in snap.neighbors(u) {
                for &x in snap.neighbors(a) {
                    if walk2[x as usize] == 0 {
                        touched.push(x);
                    }
                    walk2[x as usize] += 1;
                }
            }
            for &idx in &order[i..j] {
                let v = pairs[idx].1;
                // paths² = 2-step walks landing exactly on v.
                let p2 = walk2[v as usize] as f64;
                // paths³ = Σ_{b ∈ Γ(v)} walk2[b], excluding walks whose
                // middle edge is (u,b) with b = u … for unconnected (u,v)
                // walks cannot revisit the endpoints, so A³ is exact.
                let p3: u32 = snap.neighbors(v).iter().map(|&b| walk2[b as usize]).sum();
                scores[idx] = p2 + self.epsilon * f64::from(p3);
            }
            for &x in &touched {
                walk2[x as usize] = 0;
            }
            touched.clear();
            i = j;
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0-1-2-3-4 plus chord 1-3.
    fn fixture() -> Snapshot {
        Snapshot::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)])
    }

    #[test]
    fn sp_scores_negative_distance() {
        let s = fixture();
        let scores = ShortestPath::default().score_pairs(&s, &[(0, 2), (0, 3), (0, 4)]);
        assert_eq!(scores, vec![-2.0, -2.0, -3.0]);
    }

    #[test]
    fn sp_caps_unreachable() {
        let s = Snapshot::from_edges(4, &[(0, 1), (2, 3)]);
        let sp = ShortestPath { max_depth: 4 };
        assert_eq!(sp.score_pairs(&s, &[(0, 2)]), vec![-5.0]);
    }

    #[test]
    fn lp_counts_two_and_three_paths() {
        let s = fixture();
        let lp = LocalPath { epsilon: 0.01 };
        // Pair (0,2): one 2-path (0-1-2); 3-walks 0→2: 0-1-3-2 → p3 = 1.
        let got = lp.score_pairs(&s, &[(0, 2)])[0];
        assert!((got - (1.0 + 0.01)).abs() < 1e-12, "got {got}");
    }

    #[test]
    fn lp_pure_three_hop_pair() {
        let s = Snapshot::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let lp = LocalPath { epsilon: 0.5 };
        // (0,3): no 2-paths, exactly one 3-path.
        assert_eq!(lp.score_pairs(&s, &[(0, 3)]), vec![0.5]);
    }

    #[test]
    fn lp_multiple_parallel_paths_accumulate() {
        // Two disjoint 2-paths from 0 to 3: via 1 and via 2.
        let s = Snapshot::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
        let lp = LocalPath::default();
        let got = lp.score_pairs(&s, &[(0, 3)])[0];
        assert!((got - 2.0).abs() < 1e-3, "two 2-paths expected, got {got}");
    }

    #[test]
    fn lp_batches_match_single_queries() {
        let s = fixture();
        let lp = LocalPath::default();
        let pairs = [(0, 2), (0, 3), (2, 4), (0, 4)];
        let batch = lp.score_pairs(&s, &pairs);
        for (i, &p) in pairs.iter().enumerate() {
            assert_eq!(lp.score_pairs(&s, &[p])[0], batch[i], "pair {p:?}");
        }
    }

    #[test]
    fn lp_epsilon_zero_reduces_to_cn() {
        let s = fixture();
        let lp = LocalPath { epsilon: 0.0 };
        let pairs = [(0, 2), (0, 3), (2, 4)];
        let got = lp.score_pairs(&s, &pairs);
        let cn = crate::local::CommonNeighbors.score_pairs(&s, &pairs);
        assert_eq!(got, cn);
    }
}
