//! RESCAL \[33\]: collective matrix factorization `A ≈ X R Xᵀ` fitted by
//! alternating least squares, scored as `(XRXᵀ)_{uv} + (XRXᵀ)_{vu}`.
//!
//! RESCAL factorizes each relation slice of a tensor; link prediction on an
//! undirected graph is the single-slice special case. ALS updates:
//!
//! * `X ← [A X Rᵀ + Aᵀ X R] · [R XᵀX Rᵀ + Rᵀ XᵀX R + λI]⁻¹`
//! * `R ← (XᵀX + λI)⁻¹ Xᵀ A X (XᵀX + λI)⁻¹`
//!
//! The paper singles RESCAL out as the metric that captures supernode-
//! driven (YouTube-style) growth because the latent components assign
//! heavy weights to globally important nodes (§4.2).

use crate::exec::PairScorer;
use crate::traits::{CandidatePolicy, Metric};
use osn_graph::snapshot::Snapshot;
use osn_graph::NodeId;
use osn_linalg::{Matrix, SparseMatrix};

/// RESCAL configuration.
#[derive(Clone, Debug)]
pub struct Rescal {
    /// Latent dimensionality r.
    pub rank: usize,
    /// ALS sweeps.
    pub iterations: usize,
    /// Ridge regularization λ.
    pub lambda: f64,
    /// Deterministic init seed.
    pub seed: u64,
}

impl Default for Rescal {
    fn default() -> Self {
        // The latent dimensionality must scale with the graph: the paper's
        // multi-million-node networks support ranks in the tens, but at
        // LinkLens's preset scale (10³-10⁴ nodes) higher ranks overfit and
        // bury the supernode structure RESCAL is prized for on YouTube
        // (§4.2) under factorization noise. Rank 2 — one popularity axis
        // plus one community axis — is the empirical sweet spot across all
        // three presets (see `cargo bench --bench ablations`).
        Rescal { rank: 2, iterations: 30, lambda: 0.01, seed: 7 }
    }
}

/// A fitted factorization, exposed for tests and for reuse across pair
/// batches.
pub struct RescalModel {
    /// Node embeddings, `n × r`.
    pub x: Matrix,
    /// Core interaction matrix, `r × r`.
    pub r: Matrix,
}

impl RescalModel {
    /// The bilinear score `x_uᵀ R x_v + x_vᵀ R x_u`.
    pub fn score(&self, u: NodeId, v: NodeId) -> f64 {
        let xu = self.x.row(u as usize);
        let xv = self.x.row(v as usize);
        let r = &self.r;
        let k = r.rows();
        let mut uv = 0.0;
        let mut vu = 0.0;
        for i in 0..k {
            let ri = r.row(i);
            let mut ru_v = 0.0;
            let mut rv_u = 0.0;
            for j in 0..k {
                ru_v += ri[j] * xv[j];
                rv_u += ri[j] * xu[j];
            }
            uv += xu[i] * ru_v;
            vu += xv[i] * rv_u;
        }
        uv + vu
    }

    /// Frobenius reconstruction error `‖A − XRXᵀ‖`, tests/diagnostics only
    /// (dense; small graphs).
    pub fn reconstruction_error(&self, snap: &Snapshot) -> f64 {
        let edges: Vec<(u32, u32)> = snap.edges().collect();
        let a = SparseMatrix::adjacency(snap.node_count(), &edges).to_dense();
        let rec = self.x.matmul(&self.r).matmul(&self.x.transpose());
        (&a - &rec).frobenius_norm()
    }
}

impl Rescal {
    /// Fits the factorization on a snapshot.
    pub fn fit(&self, snap: &Snapshot) -> RescalModel {
        let n = snap.node_count();
        let r = self.rank.min(n.max(1));
        let edges: Vec<(u32, u32)> = snap.edges().collect();
        let a = SparseMatrix::adjacency(n, &edges);

        // Deterministic random init for X.
        let mut x = Matrix::zeros(n, r);
        let mut state = self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        for i in 0..n {
            for j in 0..r {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                x[(i, j)] = (z as f64 / u64::MAX as f64) - 0.5;
            }
        }
        let mut core = Matrix::identity(r);

        for _ in 0..self.iterations {
            // --- X update ---
            // numer = A X (Rᵀ + R)   (A symmetric).
            let ax = a.matmul_dense(&x);
            let r_sym = &core.transpose() + &core;
            let numer = ax.matmul(&r_sym);
            // denom = R G Rᵀ + Rᵀ G R + λI, G = XᵀX.
            let g = x.gram();
            let rg = core.matmul(&g);
            let mut denom =
                &rg.matmul(&core.transpose()) + &core.transpose().matmul(&g).matmul(&core);
            for d in 0..r {
                denom[(d, d)] += self.lambda;
            }
            // X = numer · denom⁻¹  ⇒ solve denomᵀ Xᵀ = numerᵀ row-wise.
            let denom_t = denom.transpose();
            let rhs: Vec<Vec<f64>> = (0..n).map(|i| numer.row(i).to_vec()).collect();
            if let Some(rows) = denom_t.solve_many(&rhs) {
                for (i, row) in rows.iter().enumerate() {
                    x.row_mut(i).copy_from_slice(row);
                }
            }

            // --- R update ---
            // R = (G + λI)⁻¹ Xᵀ A X (G + λI)⁻¹.
            let mut g_reg = x.gram();
            for d in 0..r {
                g_reg[(d, d)] += self.lambda;
            }
            let ax = a.matmul_dense(&x); // n × r
            let xtax = x.transpose().matmul(&ax); // r × r
                                                  // Left solve: (G+λI) Y = XᵀAX.
            let rhs: Vec<Vec<f64>> =
                (0..r).map(|j| (0..r).map(|i| xtax[(i, j)]).collect()).collect();
            if let Some(cols) = g_reg.solve_many(&rhs) {
                let mut y = Matrix::zeros(r, r);
                for (j, coljj) in cols.iter().enumerate() {
                    for i in 0..r {
                        y[(i, j)] = coljj[i];
                    }
                }
                // Right solve: R (G+λI) = Y ⇒ (G+λI)ᵀ Rᵀ = Yᵀ.
                let rhs2: Vec<Vec<f64>> = (0..r).map(|i| y.row(i).to_vec()).collect();
                if let Some(rows) = g_reg.transpose().solve_many(&rhs2) {
                    for (i, row) in rows.iter().enumerate() {
                        core.row_mut(i).copy_from_slice(row);
                    }
                }
            }
        }
        RescalModel { x, r: core }
    }
}

/// A prepared RESCAL scorer: the ALS fit happens once, pair scoring is
/// O(r²) per pair. `None` marks an empty graph (all scores zero).
struct RescalScorer {
    model: Option<RescalModel>,
}

impl PairScorer for RescalScorer {
    fn score_chunk(&self, _snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        match &self.model {
            None => vec![0.0; pairs.len()],
            Some(model) => pairs.iter().map(|&(u, v)| model.score(u, v)).collect(),
        }
    }
}

impl Metric for Rescal {
    fn name(&self) -> &'static str {
        "Rescal"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::Global
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        self.prepare(snap).score_chunk(snap, pairs)
    }

    fn prepare<'a>(&'a self, snap: &Snapshot) -> Box<dyn PairScorer + 'a> {
        let model = (snap.edge_count() > 0).then(|| self.fit(snap));
        Box::new(RescalScorer { model })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 4-cliques sharing no edge, bridged 3-4.
    fn two_cliques() -> Snapshot {
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in a + 1..4 {
                edges.push((a, b));
            }
        }
        for a in 4..8u32 {
            for b in a + 1..8 {
                edges.push((a, b));
            }
        }
        edges.push((3, 4));
        Snapshot::from_edges(8, &edges)
    }

    #[test]
    fn reconstruction_improves_over_random_init() {
        let s = two_cliques();
        let quick = Rescal { iterations: 0, rank: 4, ..Default::default() };
        let fitted = Rescal { iterations: 25, rank: 4, ..Default::default() };
        let e0 = quick.fit(&s).reconstruction_error(&s);
        let e1 = fitted.fit(&s).reconstruction_error(&s);
        assert!(e1 < e0 * 0.6, "ALS should cut the error substantially ({e0} → {e1})");
    }

    #[test]
    fn full_rank_reconstruction_is_tight() {
        let s = two_cliques();
        let r = Rescal { rank: 8, iterations: 60, lambda: 1e-3, seed: 5 };
        let err = r.fit(&s).reconstruction_error(&s);
        // ‖A‖_F = sqrt(2 · 13 edges) ≈ 5.1; full rank should get well below.
        assert!(err < 1.0, "full-rank error {err}");
    }

    #[test]
    fn scores_intra_cluster_over_inter_cluster() {
        // Remove one intra-clique edge and compare against a cross pair.
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in a + 1..4 {
                if (a, b) != (0, 2) {
                    edges.push((a, b));
                }
            }
        }
        for a in 4..8u32 {
            for b in a + 1..8 {
                edges.push((a, b));
            }
        }
        edges.push((3, 4));
        let s = Snapshot::from_edges(8, &edges);
        let r = Rescal { rank: 4, iterations: 30, lambda: 0.1, seed: 7 };
        let scores = r.score_pairs(&s, &[(0, 2), (0, 7)]);
        assert!(
            scores[0] > scores[1],
            "missing intra-clique edge should outrank cross-clique pair: {scores:?}"
        );
    }

    #[test]
    fn scores_symmetric() {
        let s = two_cliques();
        let r = Rescal::default();
        let model = r.fit(&s);
        assert!((model.score(0, 5) - model.score(5, 0)).abs() < 1e-12);
    }

    #[test]
    fn deterministic_fit() {
        let s = two_cliques();
        let r = Rescal::default();
        let a = r.fit(&s);
        let b = r.fit(&s);
        assert!(a.x.max_abs_diff(&b.x) == 0.0);
        assert!(a.r.max_abs_diff(&b.r) == 0.0);
    }

    #[test]
    fn rank_clamped_to_node_count() {
        let s = Snapshot::from_edges(3, &[(0, 1), (1, 2)]);
        let r = Rescal { rank: 50, iterations: 5, ..Default::default() };
        let model = r.fit(&s);
        assert_eq!(model.x.cols(), 3);
    }
}
