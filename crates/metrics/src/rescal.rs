//! RESCAL \[33\]: collective matrix factorization `A ≈ X R Xᵀ` fitted by
//! alternating least squares, scored as `(XRXᵀ)_{uv} + (XRXᵀ)_{vu}`.
//!
//! RESCAL factorizes each relation slice of a tensor; link prediction on an
//! undirected graph is the single-slice special case. ALS updates:
//!
//! * `X ← [A X Rᵀ + Aᵀ X R] · [R XᵀX Rᵀ + Rᵀ XᵀX R + λI]⁻¹`
//! * `R ← (XᵀX + λI)⁻¹ Xᵀ A X (XᵀX + λI)⁻¹`
//!
//! The paper singles RESCAL out as the metric that captures supernode-
//! driven (YouTube-style) growth because the latent components assign
//! heavy weights to globally important nodes (§4.2).
//!
//! ## Engine integration
//!
//! The production fit runs on the blocked ALS core in
//! [`osn_linalg::factor`]: `A·X` products go through the thread-parallel
//! CSR `spmm_into_t` kernel (bit-identical to the serial dense fold at
//! every thread count), each sweep certifies a sparse Frobenius residual,
//! and every normal-equations solve is guarded — a singular system
//! surfaces as [`SolverError::Singular`] instead of the silent
//! stale-factor skip the original dense loop performed. Pair scoring is
//! whole-batch ([`ExecMode::WholeBatch`]) through
//! [`solver::bilinear_scores_t`], and fitted models register in the
//! [`SolverCache`] so framework sweeps reuse the fit within a snapshot
//! and — in certified mode (`tol > 0`) — warm-start the next snapshot's
//! fit from the previous factors, like PPR warm-starts its columns.
//! [`Rescal::fit_dense_reference`] retains the original serial dense loop
//! as the property-tested oracle.

use std::sync::Arc;

use crate::exec::{ExecMode, PairScorer};
use crate::solver::{self, SolverCache, SolverError};
use crate::traits::{CandidatePolicy, Metric};
use osn_graph::par;
use osn_graph::snapshot::Snapshot;
use osn_graph::NodeId;
use osn_linalg::factor::{self, AlsConfig, FactorError};
use osn_linalg::{Matrix, SparseMatrix};

/// RESCAL configuration.
#[derive(Clone, Debug)]
pub struct Rescal {
    /// Latent dimensionality r.
    pub rank: usize,
    /// ALS sweep budget. With `tol == 0` exactly this many sweeps run;
    /// with `tol > 0` it bounds the certified fit.
    pub iterations: usize,
    /// Ridge regularization λ.
    pub lambda: f64,
    /// Deterministic init seed.
    pub seed: u64,
    /// Relative residual-plateau tolerance for certified early stopping
    /// (see [`AlsConfig::tol`]). `0.0` — the default — runs the
    /// paper-parity fixed-sweep fit, a pure function of the snapshot and
    /// this config; `> 0` enables early stopping and cross-snapshot
    /// warm starts on persistent caches.
    pub tol: f64,
}

impl Default for Rescal {
    fn default() -> Self {
        // The latent dimensionality must scale with the graph: the paper's
        // multi-million-node networks support ranks in the tens, but at
        // LinkLens's preset scale (10³-10⁴ nodes) higher ranks overfit and
        // bury the supernode structure RESCAL is prized for on YouTube
        // (§4.2) under factorization noise. Rank 2 — one popularity axis
        // plus one community axis — is the empirical sweet spot across all
        // three presets (see `cargo bench --bench ablations`).
        Rescal { rank: 2, iterations: 30, lambda: 0.01, seed: 7, tol: 0.0 }
    }
}

/// A fitted factorization, exposed for tests and for reuse across pair
/// batches and snapshots (via the [`SolverCache`]).
#[derive(Clone)]
pub struct RescalModel {
    /// Node embeddings, `n × r`.
    pub x: Matrix,
    /// Core interaction matrix, `r × r`.
    pub r: Matrix,
    /// Certified Frobenius residual `‖A − XRXᵀ‖_F` at the fitted factors.
    pub residual: f64,
    /// ALS sweeps actually run.
    pub iterations: usize,
    /// Whether the fit warm-started from a previous snapshot's factors.
    pub warm_started: bool,
}

impl std::fmt::Debug for RescalModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RescalModel")
            .field("n", &self.x.rows())
            .field("rank", &self.x.cols())
            .field("residual", &self.residual)
            .field("iterations", &self.iterations)
            .field("warm_started", &self.warm_started)
            .finish_non_exhaustive()
    }
}

impl RescalModel {
    /// The bilinear score `x_uᵀ R x_v + x_vᵀ R x_u`, folded per pair as
    /// `Σ_i x[i]·(R·x)[i]` — the per-pair oracle association the batched
    /// [`solver::bilinear_scores_t`] path is cross-checked against (to
    /// reassociation tolerance; the batched path folds `X R` first).
    pub fn score(&self, u: NodeId, v: NodeId) -> f64 {
        let xu = self.x.row(u as usize);
        let xv = self.x.row(v as usize);
        let r = &self.r;
        let k = r.rows();
        let mut uv = 0.0;
        let mut vu = 0.0;
        for i in 0..k {
            let ri = r.row(i);
            let mut ru_v = 0.0;
            let mut rv_u = 0.0;
            for j in 0..k {
                ru_v += ri[j] * xv[j];
                rv_u += ri[j] * xu[j];
            }
            uv += xu[i] * ru_v;
            vu += xv[i] * rv_u;
        }
        uv + vu
    }

    /// Frobenius reconstruction error `‖A − XRXᵀ‖_F`, computed sparsely
    /// over the nonzeros plus a trace-correction term — nothing `n × n`
    /// is materialized, so this is safe at preset scale and equals the
    /// per-sweep certification value ([`factor::frobenius_residual`]).
    pub fn reconstruction_error(&self, snap: &Snapshot) -> f64 {
        let edges: Vec<(u32, u32)> = snap.edges().collect();
        let a = SparseMatrix::adjacency(snap.node_count(), &edges);
        factor::frobenius_residual(&a, &self.x, &self.r, par::max_threads())
    }
}

fn map_factor_err(e: FactorError) -> SolverError {
    match e {
        FactorError::Singular { iteration, .. } => {
            SolverError::Singular { metric: "Rescal", iteration }
        }
        FactorError::NonFinite { iteration } => {
            SolverError::NonFinite { metric: "Rescal", iteration }
        }
        FactorError::NoConvergence { iterations } => {
            SolverError::NoConvergence { metric: "Rescal", iterations }
        }
    }
}

impl Rescal {
    fn config(&self) -> AlsConfig {
        AlsConfig {
            rank: self.rank,
            iterations: self.iterations,
            lambda: self.lambda,
            seed: self.seed,
            tol: self.tol,
        }
    }

    /// Config fingerprint keying [`SolverCache`] model slots, so two
    /// Rescal configurations sharing one cache never alias fits.
    fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for w in [
            self.rank as u64,
            self.iterations as u64,
            self.lambda.to_bits(),
            self.seed,
            self.tol.to_bits(),
        ] {
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Fits the factorization on a snapshot with the shared worker pool.
    ///
    /// # Errors
    ///
    /// [`SolverError::Singular`] when an ALS normal-equations system
    /// loses rank (previously a silent skip that left stale factors),
    /// [`SolverError::NonFinite`] when factors or residual leave the
    /// finite range, [`SolverError::NoConvergence`] when `tol > 0` and
    /// the residual never plateaus within the sweep budget.
    pub fn fit(&self, snap: &Snapshot) -> Result<RescalModel, SolverError> {
        self.fit_t(snap, par::max_threads())
    }

    /// [`fit`](Self::fit) with an explicit thread count; bit-identical
    /// for every `threads` value.
    pub fn fit_t(&self, snap: &Snapshot, threads: usize) -> Result<RescalModel, SolverError> {
        self.fit_warm_t(snap, None, threads)
    }

    /// [`fit_t`](Self::fit_t) seeded with warm factors from a previous
    /// snapshot's model. The warm start is honored only in certified
    /// mode (`tol > 0`); fixed-sweep fits ignore it so the default
    /// configuration stays a pure function of the snapshot.
    pub fn fit_warm_t(
        &self,
        snap: &Snapshot,
        warm: Option<(&Matrix, &Matrix)>,
        threads: usize,
    ) -> Result<RescalModel, SolverError> {
        let edges: Vec<(u32, u32)> = snap.edges().collect();
        let a = SparseMatrix::adjacency(snap.node_count(), &edges);
        let fit = factor::als_fit(&a, &self.config(), warm, threads).map_err(map_factor_err)?;
        Ok(RescalModel {
            x: fit.x,
            r: fit.r,
            residual: fit.residual,
            iterations: fit.iterations,
            warm_started: fit.warm_started,
        })
    }

    /// Serial dense reference fit: the original `matmul_dense` ALS loop,
    /// kept as the property-tested oracle for the blocked core. Performs
    /// the same guarded updates and residual certification; since the
    /// blocked kernel's per-row fold is arithmetic-identical to
    /// `matmul_dense`, the two fits are bit-identical — the contract
    /// `factor_equivalence` pins at every thread count.
    pub fn fit_dense_reference(&self, snap: &Snapshot) -> Result<RescalModel, SolverError> {
        let n = snap.node_count();
        let r = self.rank.min(n.max(1));
        let edges: Vec<(u32, u32)> = snap.edges().collect();
        let a = SparseMatrix::adjacency(n, &edges);

        let mut x = factor::init_factors(n, r, self.seed);
        let mut core = Matrix::identity(r);
        let mut prev = f64::INFINITY;
        let mut residual = f64::NAN;
        let mut iterations = 0;
        let mut converged = self.tol <= 0.0;

        for it in 0..self.iterations {
            // --- X update ---
            // numer = A X (Rᵀ + R)   (A symmetric).
            let ax = a.matmul_dense(&x);
            let r_sym = &core.transpose() + &core;
            let numer = ax.matmul(&r_sym);
            // denom = R G Rᵀ + Rᵀ G R + λI, G = XᵀX.
            let g = x.gram();
            let rg = core.matmul(&g);
            let mut denom =
                &rg.matmul(&core.transpose()) + &core.transpose().matmul(&g).matmul(&core);
            for d in 0..r {
                denom[(d, d)] += self.lambda;
            }
            // X = numer · denom⁻¹  ⇒ solve denomᵀ Xᵀ = numerᵀ row-wise.
            let denom_t = denom.transpose();
            let rhs: Vec<Vec<f64>> = (0..n).map(|i| numer.row(i).to_vec()).collect();
            let rows = denom_t
                .solve_many(&rhs)
                .ok_or(SolverError::Singular { metric: "Rescal", iteration: it })?;
            for (i, row) in rows.iter().enumerate() {
                x.row_mut(i).copy_from_slice(row);
            }

            // --- R update ---
            // R = (G + λI)⁻¹ Xᵀ A X (G + λI)⁻¹.
            let mut g_reg = x.gram();
            for d in 0..r {
                g_reg[(d, d)] += self.lambda;
            }
            let ax = a.matmul_dense(&x); // n × r
            let xtax = x.transpose().matmul(&ax); // r × r
                                                  // Left solve: (G+λI) Y = XᵀAX.
            let rhs: Vec<Vec<f64>> =
                (0..r).map(|j| (0..r).map(|i| xtax[(i, j)]).collect()).collect();
            let cols = g_reg
                .solve_many(&rhs)
                .ok_or(SolverError::Singular { metric: "Rescal", iteration: it })?;
            let mut y = Matrix::zeros(r, r);
            for (j, coljj) in cols.iter().enumerate() {
                for i in 0..r {
                    y[(i, j)] = coljj[i];
                }
            }
            // Right solve: R (G+λI) = Y ⇒ (G+λI)ᵀ Rᵀ = Yᵀ.
            let rhs2: Vec<Vec<f64>> = (0..r).map(|i| y.row(i).to_vec()).collect();
            let rows = g_reg
                .transpose()
                .solve_many(&rhs2)
                .ok_or(SolverError::Singular { metric: "Rescal", iteration: it })?;
            for (i, row) in rows.iter().enumerate() {
                core.row_mut(i).copy_from_slice(row);
            }

            if x.data().iter().chain(core.data()).any(|v| !v.is_finite()) {
                return Err(SolverError::NonFinite { metric: "Rescal", iteration: it });
            }

            residual = factor::frobenius_residual(&a, &x, &core, 1);
            if !residual.is_finite() {
                return Err(SolverError::NonFinite { metric: "Rescal", iteration: it });
            }
            iterations = it + 1;
            if self.tol > 0.0 && prev.is_finite() && prev - residual <= self.tol * prev.max(1.0) {
                converged = true;
                break;
            }
            prev = residual;
        }
        if !converged {
            return Err(SolverError::NoConvergence { metric: "Rescal", iterations });
        }
        if residual.is_nan() {
            residual = factor::frobenius_residual(&a, &x, &core, 1);
        }
        Ok(RescalModel { x, r: core, residual, iterations, warm_started: false })
    }

    /// The per-snapshot fitted model for the engine paths: reuses the
    /// cache's current-snapshot model when the config fingerprint
    /// matches, otherwise fits (warm-starting from the previous
    /// snapshot's factors in certified mode) and registers the result.
    /// `None` marks an edgeless snapshot — all scores zero.
    fn fitted_model(
        &self,
        snap: &Snapshot,
        cache: &mut SolverCache,
        threads: usize,
    ) -> Result<Option<Arc<RescalModel>>, SolverError> {
        if snap.edge_count() == 0 {
            return Ok(None);
        }
        let fp = self.fingerprint();
        if let Some(model) = cache.rescal_model(fp) {
            return Ok(Some(model));
        }
        let warm = cache.rescal_warm(fp);
        let model = self.fit_warm_t(snap, warm.as_ref().map(|m| (&m.x, &m.r)), threads)?;
        cache.stats.rescal_fits += 1;
        cache.stats.rescal_iterations += model.iterations as u64;
        if model.warm_started {
            cache.stats.rescal_warm_starts += 1;
        }
        let model = Arc::new(model);
        cache.store_rescal(fp, Arc::clone(&model));
        Ok(Some(model))
    }
}

/// A prepared RESCAL scorer: the ALS fit happens once, pair scoring is
/// two length-r dot products against the precomputed `XR` — the exact
/// per-pair fold of [`solver::bilinear_scores_t`], so the chunked path
/// is bit-identical to the whole-batch path. `None` marks an empty
/// graph (all scores zero).
struct RescalScorer {
    model: Option<(Arc<RescalModel>, Matrix)>,
}

impl RescalScorer {
    fn new(model: Option<Arc<RescalModel>>) -> Self {
        let model = model.map(|m| {
            let xr = m.x.matmul(&m.r);
            (m, xr)
        });
        RescalScorer { model }
    }
}

impl PairScorer for RescalScorer {
    fn score_chunk(&self, _snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        match &self.model {
            None => vec![0.0; pairs.len()],
            Some((model, xr)) => pairs
                .iter()
                .map(|&(u, v)| {
                    let (xu, xv) = (model.x.row(u as usize), model.x.row(v as usize));
                    let (xru, xrv) = (xr.row(u as usize), xr.row(v as usize));
                    let mut s = 0.0;
                    for (p, q) in xru.iter().zip(xv) {
                        s += p * q;
                    }
                    for (p, q) in xrv.iter().zip(xu) {
                        s += p * q;
                    }
                    s
                })
                .collect(),
        }
    }
}

impl Metric for Rescal {
    fn name(&self) -> &'static str {
        "Rescal"
    }

    fn candidate_policy(&self) -> CandidatePolicy {
        CandidatePolicy::Global
    }

    fn exec_mode(&self) -> ExecMode {
        ExecMode::WholeBatch
    }

    fn score_pairs(&self, snap: &Snapshot, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        self.score_pairs_t(snap, pairs, par::max_threads())
    }

    fn score_pairs_t(
        &self,
        snap: &Snapshot,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Vec<f64> {
        let mut cache = SolverCache::transient();
        self.score_pairs_cached(snap, pairs, threads, &mut cache)
    }

    fn score_pairs_cached(
        &self,
        snap: &Snapshot,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
        cache: &mut SolverCache,
    ) -> Vec<f64> {
        cache.ensure_snapshot(snap);
        match self.fitted_model(snap, cache, threads) {
            Ok(None) => vec![0.0; pairs.len()],
            Ok(Some(model)) => solver::bilinear_scores_t(&model.x, &model.r, pairs, threads),
            // The Metric trait has no error channel; a tripped solver guard
            // is a hard invariant violation, same class as an audit panic.
            Err(e) => panic!("{e}"),
        }
    }

    fn prepare<'a>(&'a self, snap: &Snapshot) -> Box<dyn PairScorer + 'a> {
        let model = if snap.edge_count() == 0 {
            None
        } else {
            match self.fit_t(snap, par::max_threads()) {
                Ok(model) => Some(Arc::new(model)),
                // Same audit panic class as score_pairs_cached: prepare has
                // no error channel either.
                Err(e) => panic!("{e}"),
            }
        };
        Box::new(RescalScorer::new(model))
    }

    fn prepare_cached<'a>(
        &'a self,
        snap: &Snapshot,
        cache: &SolverCache,
    ) -> Box<dyn PairScorer + 'a> {
        if let Some(model) = cache.rescal_model(self.fingerprint()) {
            if model.x.rows() == snap.node_count() {
                return Box::new(RescalScorer::new(Some(model)));
            }
        }
        self.prepare(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 4-cliques sharing no edge, bridged 3-4.
    fn two_cliques() -> Snapshot {
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in a + 1..4 {
                edges.push((a, b));
            }
        }
        for a in 4..8u32 {
            for b in a + 1..8 {
                edges.push((a, b));
            }
        }
        edges.push((3, 4));
        Snapshot::from_edges(8, &edges)
    }

    #[test]
    fn reconstruction_improves_over_random_init() {
        let s = two_cliques();
        let quick = Rescal { iterations: 0, rank: 4, ..Default::default() };
        let fitted = Rescal { iterations: 25, rank: 4, ..Default::default() };
        let e0 = quick.fit(&s).expect("init fit").reconstruction_error(&s);
        let e1 = fitted.fit(&s).expect("fit").reconstruction_error(&s);
        assert!(e1 < e0 * 0.6, "ALS should cut the error substantially ({e0} → {e1})");
    }

    #[test]
    fn full_rank_reconstruction_is_tight() {
        let s = two_cliques();
        let r = Rescal { rank: 8, iterations: 60, lambda: 1e-3, seed: 5, tol: 0.0 };
        let err = r.fit(&s).expect("fit").reconstruction_error(&s);
        // ‖A‖_F = sqrt(2 · 13 edges) ≈ 5.1; full rank should get well below.
        assert!(err < 1.0, "full-rank error {err}");
    }

    #[test]
    fn model_residual_matches_reconstruction_error() {
        let s = two_cliques();
        let model = Rescal::default().fit(&s).expect("fit");
        assert_eq!(model.residual, model.reconstruction_error(&s));
    }

    #[test]
    fn scores_intra_cluster_over_inter_cluster() {
        // Remove one intra-clique edge and compare against a cross pair.
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in a + 1..4 {
                if (a, b) != (0, 2) {
                    edges.push((a, b));
                }
            }
        }
        for a in 4..8u32 {
            for b in a + 1..8 {
                edges.push((a, b));
            }
        }
        edges.push((3, 4));
        let s = Snapshot::from_edges(8, &edges);
        let r = Rescal { rank: 4, iterations: 30, lambda: 0.1, ..Default::default() };
        let scores = r.score_pairs(&s, &[(0, 2), (0, 7)]);
        assert!(
            scores[0] > scores[1],
            "missing intra-clique edge should outrank cross-clique pair: {scores:?}"
        );
    }

    #[test]
    fn scores_symmetric() {
        let s = two_cliques();
        let r = Rescal::default();
        let model = r.fit(&s).expect("fit");
        assert!((model.score(0, 5) - model.score(5, 0)).abs() < 1e-12);
    }

    #[test]
    fn deterministic_fit() {
        let s = two_cliques();
        let r = Rescal::default();
        let a = r.fit(&s).expect("fit");
        let b = r.fit(&s).expect("fit");
        assert!(a.x.max_abs_diff(&b.x) == 0.0);
        assert!(a.r.max_abs_diff(&b.r) == 0.0);
    }

    #[test]
    fn rank_clamped_to_node_count() {
        let s = Snapshot::from_edges(3, &[(0, 1), (1, 2)]);
        let r = Rescal { rank: 50, iterations: 5, ..Default::default() };
        let model = r.fit(&s).expect("fit");
        assert_eq!(model.x.cols(), 3);
    }

    #[test]
    fn singular_system_is_structured_error_not_silent_skip() {
        // Rank-deficient regression: one edge among 4 nodes at rank 3
        // with no ridge. After the first X update the embedding has rank
        // ≤ 1, so G = XᵀX is singular — the original loop silently kept
        // stale factors here; now it must surface structurally.
        let s = Snapshot::from_edges(4, &[(0, 1)]);
        let bad = Rescal { rank: 3, iterations: 5, lambda: 0.0, ..Default::default() };
        let err = bad.fit(&s).expect_err("singular system must surface");
        assert!(matches!(err, SolverError::Singular { metric: "Rescal", .. }), "got {err:?}");
        // Recoverable: any positive ridge regularizes the same system.
        let good = Rescal { lambda: 0.01, ..bad };
        good.fit(&s).expect("regularized fit recovers");
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_fit_panics_in_audit_class_on_score_pairs() {
        let s = Snapshot::from_edges(4, &[(0, 1)]);
        let bad = Rescal { rank: 3, iterations: 5, lambda: 0.0, ..Default::default() };
        let _ = bad.score_pairs(&s, &[(0, 2)]);
    }

    #[test]
    fn batched_path_matches_per_pair_oracle() {
        let s = two_cliques();
        let r = Rescal { rank: 4, ..Default::default() };
        let model = r.fit(&s).expect("fit");
        let pairs: Vec<(NodeId, NodeId)> = vec![(0, 2), (0, 7), (3, 4), (1, 6)];
        let batched = r.score_pairs(&s, &pairs);
        let prepared = r.prepare(&s).score_chunk(&s, &pairs);
        assert_eq!(batched, prepared, "whole-batch and prepared paths must agree bitwise");
        for (i, &(u, v)) in pairs.iter().enumerate() {
            assert!(
                (batched[i] - model.score(u, v)).abs() <= 1e-9,
                "pair ({u},{v}): batched {} vs oracle {}",
                batched[i],
                model.score(u, v)
            );
        }
    }
}
