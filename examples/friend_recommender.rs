//! Friend recommendation — the paper's motivating application ("People You
//! May Know"). Trains an SVM over all similarity metrics on one snapshot
//! transition, then prints the top recommendations for a few users, with
//! the metric evidence behind each suggestion.
//!
//! Feature columns are produced by the cached batched engine
//! ([`exec::score_matrix_cached_t`] with one sweep [`SolverCache`] shared
//! across snapshots), and the run self-asserts that the recommendations
//! are identical to the legacy per-metric scoring path — CI runs this
//! example, so the assert doubles as a regression gate.
//!
//! ```sh
//! cargo run --release --example friend_recommender
//! ```

use linklens::core::classify::ClassifierKind;
use linklens::graph::par;
use linklens::graph::traversal;
use linklens::metrics::exec;
use linklens::metrics::solver::SolverCache;
use linklens::metrics::topk;
use linklens::ml::data::Dataset;
use linklens::ml::Classifier;
use linklens::prelude::*;

fn main() {
    // A Renren-like friendship network.
    let config = TraceConfig::renren_like().scaled(0.08).with_days(60);
    let trace = config.generate(11);
    let seq = SnapshotSequence::with_count(&trace, 8);
    let t = seq.len() - 1;
    println!(
        "network: {} nodes / {} edges; training on transition {} → {}",
        trace.node_count(),
        trace.edge_count(),
        t - 1,
        t
    );

    let metrics = linklens::metrics::all_metrics();
    let metric_refs: Vec<&dyn Metric> = metrics.iter().map(|m| m.as_ref()).collect();
    let threads = par::max_threads();
    // One sweep cache across the whole run: the transition view is shared
    // within each snapshot and converged solver state warm-starts the
    // next snapshot's solves.
    let mut cache = SolverCache::sweep();

    // Batched feature matrix: one engine call yields every metric column
    // at once (fused kernel for the local metrics, cached solvers for the
    // global ones), then transpose columns into per-pair feature rows.
    let features = |snap: &Snapshot, pairs: &[(NodeId, NodeId)], cache: &mut SolverCache| {
        let cols = exec::score_matrix_cached_t(&metric_refs, snap, pairs, threads, cache);
        (0..pairs.len())
            .map(|i| cols.iter().map(|c| c[i]).collect::<Vec<f64>>())
            .collect::<Vec<Vec<f64>>>()
    };

    // --- Train: label pairs of G_{t-2} by connectivity in G_{t-1}. ---
    let train_snap = seq.snapshot(t - 2);
    let truth: std::collections::HashSet<_> = seq.new_edges(t - 1).into_iter().collect();
    let candidates = traversal::two_hop_pairs(&train_snap);

    // Undersample: all positives, 30 negatives per positive.
    let positives: Vec<_> = candidates.iter().copied().filter(|p| truth.contains(p)).collect();
    let negatives: Vec<_> = candidates
        .iter()
        .copied()
        .filter(|p| !truth.contains(p))
        .take(positives.len() * 30)
        .collect();
    println!("training pairs: {} positive, {} negative", positives.len(), negatives.len());

    // On the first snapshot the sweep cache runs cold, so the batched
    // columns must be bit-identical to the legacy one-metric-at-a-time
    // path the example used before the engine existed.
    let legacy_cols: Vec<Vec<f64>> =
        metrics.iter().map(|m| m.score_pairs(&train_snap, &positives)).collect();
    let batched_cols =
        exec::score_matrix_cached_t(&metric_refs, &train_snap, &positives, threads, &mut cache);
    assert_eq!(
        batched_cols, legacy_cols,
        "cached batched engine diverged from the per-metric path on the training snapshot"
    );

    let mut data = Dataset::new(metrics.len());
    for f in features(&train_snap, &positives, &mut cache) {
        data.push(&f, 1);
    }
    for f in features(&train_snap, &negatives, &mut cache) {
        data.push(&f, 0);
    }
    let data = data.shuffled(3);
    let scaler = data.fit_scaler();
    let mut svm = LinearSvm::seeded(5);
    svm.fit(&data.scaled_by(&scaler));
    let _ = ClassifierKind::Svm; // the harness enum exists for sweeps; here we use the model directly

    // --- Recommend: rank current 2-hop pairs on the latest snapshot. ---
    let now = seq.snapshot(t - 1);
    let cands = traversal::two_hop_pairs(&now);
    let feats = features(&now, &cands, &mut cache);
    let scores: Vec<f64> = feats.iter().map(|f| svm.decision(&scaler.transform(f))).collect();
    let top = topk::top_k_pairs(&cands, &scores, 10, 1);

    // Same top-k as the legacy path, warm solver state and all: recompute
    // the recommendation features one metric at a time and assert the
    // ranked pairs agree.
    let legacy_now: Vec<Vec<f64>> = metrics.iter().map(|m| m.score_pairs(&now, &cands)).collect();
    let legacy_scores: Vec<f64> = (0..cands.len())
        .map(|i| {
            let row: Vec<f64> = legacy_now.iter().map(|c| c[i]).collect();
            svm.decision(&scaler.transform(&row))
        })
        .collect();
    let legacy_top = topk::top_k_pairs(&cands, &legacy_scores, 10, 1);
    assert_eq!(top, legacy_top, "batched path recommends different pairs than the legacy path");
    println!("parity: batched-engine recommendations match the legacy per-metric path");

    // Show the strongest metric features overall (Figure 12 style).
    let names: Vec<&str> = metrics.iter().map(|m| m.name()).collect();
    let coefs = svm.normalized_coefficients();
    let mut ranked: Vec<(&str, f64)> = names.iter().copied().zip(coefs).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nSVM's heaviest features: {:?}", &ranked[..4]);

    // Top recommendations network-wide.
    println!("\ntop 10 recommendations (u ↔ v, SVM margin, CN count):");
    for (u, v) in top {
        let idx = cands.iter().position(|&p| p == (u, v)).expect("pair came from cands");
        println!(
            "  {u:>5} ↔ {v:<5}  margin {:>7.2}   common friends: {}",
            scores[idx],
            now.common_neighbor_count(u, v)
        );
    }

    // Per-user recommendations for the three highest-degree users.
    let mut by_degree: Vec<NodeId> = (0..now.node_count() as NodeId).collect();
    by_degree.sort_unstable_by_key(|&u| std::cmp::Reverse(now.degree(u)));
    for &user in by_degree.iter().take(3) {
        let mut user_scores: Vec<(usize, f64)> = cands
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| a == user || b == user)
            .map(|(i, _)| (i, scores[i]))
            .collect();
        user_scores.sort_by(|a, b| b.1.total_cmp(&a.1));
        let picks: Vec<String> = user_scores
            .iter()
            .take(3)
            .map(|&(i, s)| {
                let (a, b) = cands[i];
                let other = if a == user { b } else { a };
                format!("{other} ({s:.2})")
            })
            .collect();
        println!("user {user} (degree {}): suggest {}", now.degree(user), picks.join(", "));
    }
}
