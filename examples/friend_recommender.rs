//! Friend recommendation — the paper's motivating application ("People You
//! May Know"). Trains an SVM over all 14 similarity metrics on one
//! snapshot transition, then prints the top recommendations for a few
//! users, with the metric evidence behind each suggestion.
//!
//! ```sh
//! cargo run --release --example friend_recommender
//! ```

use linklens::core::classify::ClassifierKind;
use linklens::graph::traversal;
use linklens::metrics::topk;
use linklens::ml::data::Dataset;
use linklens::ml::Classifier;
use linklens::prelude::*;

fn main() {
    // A Renren-like friendship network.
    let config = TraceConfig::renren_like().scaled(0.08).with_days(60);
    let trace = config.generate(11);
    let seq = SnapshotSequence::with_count(&trace, 8);
    let t = seq.len() - 1;
    println!(
        "network: {} nodes / {} edges; training on transition {} → {}",
        trace.node_count(),
        trace.edge_count(),
        t - 1,
        t
    );

    // --- Train: label pairs of G_{t-2} by connectivity in G_{t-1}. ---
    let train_snap = seq.snapshot(t - 2);
    let truth: std::collections::HashSet<_> = seq.new_edges(t - 1).into_iter().collect();
    let metrics = linklens::metrics::all_metrics();
    let candidates = traversal::two_hop_pairs(&train_snap);

    let features = |snap: &Snapshot, pairs: &[(NodeId, NodeId)]| -> Vec<Vec<f64>> {
        let cols: Vec<Vec<f64>> = metrics.iter().map(|m| m.score_pairs(snap, pairs)).collect();
        (0..pairs.len()).map(|i| cols.iter().map(|c| c[i]).collect()).collect()
    };

    // Undersample: all positives, 30 negatives per positive.
    let positives: Vec<_> = candidates.iter().copied().filter(|p| truth.contains(p)).collect();
    let negatives: Vec<_> = candidates
        .iter()
        .copied()
        .filter(|p| !truth.contains(p))
        .take(positives.len() * 30)
        .collect();
    println!("training pairs: {} positive, {} negative", positives.len(), negatives.len());

    let mut data = Dataset::new(metrics.len());
    for f in features(&train_snap, &positives) {
        data.push(&f, 1);
    }
    for f in features(&train_snap, &negatives) {
        data.push(&f, 0);
    }
    let data = data.shuffled(3);
    let scaler = data.fit_scaler();
    let mut svm = LinearSvm::seeded(5);
    svm.fit(&data.scaled_by(&scaler));
    let _ = ClassifierKind::Svm; // the harness enum exists for sweeps; here we use the model directly

    // --- Recommend: rank current 2-hop pairs on the latest snapshot. ---
    let now = seq.snapshot(t - 1);
    let cands = traversal::two_hop_pairs(&now);
    let feats = features(&now, &cands);
    let scores: Vec<f64> = feats.iter().map(|f| svm.decision(&scaler.transform(f))).collect();

    // Show the strongest metric features overall (Figure 12 style).
    let names: Vec<&str> = metrics.iter().map(|m| m.name()).collect();
    let coefs = svm.normalized_coefficients();
    let mut ranked: Vec<(&str, f64)> = names.iter().copied().zip(coefs).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nSVM's heaviest features: {:?}", &ranked[..4]);

    // Top recommendations network-wide.
    println!("\ntop 10 recommendations (u ↔ v, SVM margin, CN count):");
    for (u, v) in topk::top_k_pairs(&cands, &scores, 10, 1) {
        let idx = cands.iter().position(|&p| p == (u, v)).expect("pair came from cands");
        println!(
            "  {u:>5} ↔ {v:<5}  margin {:>7.2}   common friends: {}",
            scores[idx],
            now.common_neighbor_count(u, v)
        );
    }

    // Per-user recommendations for the three highest-degree users.
    let mut by_degree: Vec<NodeId> = (0..now.node_count() as NodeId).collect();
    by_degree.sort_unstable_by_key(|&u| std::cmp::Reverse(now.degree(u)));
    for &user in by_degree.iter().take(3) {
        let mut user_scores: Vec<(usize, f64)> = cands
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| a == user || b == user)
            .map(|(i, _)| (i, scores[i]))
            .collect();
        user_scores.sort_by(|a, b| b.1.total_cmp(&a.1));
        let picks: Vec<String> = user_scores
            .iter()
            .take(3)
            .map(|&(i, s)| {
                let (a, b) = cands[i];
                let other = if a == user { b } else { a };
                format!("{other} ({s:.2})")
            })
            .collect();
        println!("user {user} (degree {}): suggest {}", now.degree(user), picks.join(", "));
    }
}
