//! Growth monitoring — the measurement-study side of the paper: track a
//! network's structural evolution snapshot by snapshot (Figures 1–4),
//! measure λ₂ and supernode concentration (§4.2), and let the §4.3
//! decision machinery recommend which link-prediction metric to deploy.
//!
//! ```sh
//! cargo run --release --example growth_monitor
//! ```

use linklens::graph::stats;
use linklens::prelude::*;

fn main() {
    for config in [
        TraceConfig::facebook_like().scaled(0.12).with_days(60),
        TraceConfig::youtube_like().scaled(0.12).with_days(60),
    ] {
        let trace = config.generate(23);
        let seq = SnapshotSequence::with_count(&trace, 8);
        println!("=== {} ===", config.name);
        println!(
            "{:>4} {:>7} {:>8} {:>7} {:>7} {:>7} {:>8} {:>6}",
            "snap", "nodes", "edges", "deg", "clust", "APL", "assort", "λ₂"
        );
        // `snapshots()` walks the whole sequence through one incremental
        // arena — the cheap way to monitor every boundary in order.
        let mut sweep = seq.snapshots();
        let mut i = 0;
        while let Some(snap) = sweep.next() {
            let p = stats::snapshot_properties(snap, 25);
            let lambda2 = if i + 1 < seq.len() {
                stats::two_hop_edge_ratio(snap, &seq.new_edges(i + 1))
            } else {
                f64::NAN
            };
            println!(
                "{:>4} {:>7} {:>8} {:>7.1} {:>7.3} {:>7.2} {:>8.3} {:>6.2}",
                i,
                p.nodes,
                p.edges,
                p.degree.mean,
                p.clustering,
                p.avg_path_length,
                p.assortativity,
                lambda2
            );
            i += 1;
        }

        // Supernode concentration (the YouTube-vs-friendship discriminator).
        let last = seq.snapshot(seq.len() - 2);
        let new_edges = seq.new_edges(seq.len() - 1);
        println!(
            "share of new edges touching top-1% degree nodes: {:.1}%",
            stats::top_degree_edge_share(&last, &new_edges, 0.01) * 100.0
        );

        // What the §4.3 heuristics would recommend, based on the paper's
        // reported rules.
        let props = stats::snapshot_properties(&last, 25);
        let feats = NetworkFeatures::from_properties(&props);
        let recommendation = if feats.degree_std > 3.0 * feats.degree_mean {
            "Rescal (high degree heterogeneity)"
        } else if feats.degree_median >= 8.0 {
            "BRA / RA (dense network)"
        } else {
            "Katz (small, sparse network)"
        };
        println!(
            "degree std/mean = {:.1}, median = {}; paper rule suggests: {recommendation}\n",
            feats.degree_std / feats.degree_mean,
            feats.degree_median
        );
    }
}
