//! Quickstart: generate a synthetic growth trace, snapshot it, and compare
//! a few link-prediction metrics on one transition.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use linklens::prelude::*;

fn main() {
    // 1. Generate a Renren-like friendship growth trace, scaled down so
    //    this example finishes in a couple of seconds.
    let config = TraceConfig::renren_like().scaled(0.12).with_days(60);
    let trace = config.generate(7);
    println!(
        "generated '{}': {} nodes, {} edges over {} days",
        config.name,
        trace.node_count(),
        trace.edge_count(),
        config.days
    );

    // 2. Discretize into snapshots with a constant edge delta (§3.2 of the
    //    paper) and look at how the network densifies.
    let seq = SnapshotSequence::with_count(&trace, 10);
    for i in [0, seq.len() / 2, seq.len() - 1] {
        let snap = seq.snapshot(i);
        println!(
            "snapshot {i}: {} nodes, {} edges, avg degree {:.1}",
            snap.node_count(),
            snap.edge_count(),
            2.0 * snap.edge_count() as f64 / snap.node_count() as f64
        );
    }

    // 3. Predict the last transition with a handful of metrics and compare
    //    accuracy ratios (improvement over random prediction).
    let eval = SequenceEvaluator::new(&seq);
    // Use a mid-trace transition: late transitions on a short scaled trace
    // are dominated by brand-new nodes whose edges no structural metric can
    // reach (the paper's "limits of prediction" point, §8).
    let t = seq.len() * 3 / 4;
    println!("\npredicting snapshot {t} from {}:", t - 1);
    let metrics: Vec<Box<dyn Metric>> = vec![
        Box::new(CommonNeighbors),
        Box::new(ResourceAllocation),
        Box::new(BayesResourceAllocation),
        Box::new(PreferentialAttachment),
    ];
    for metric in &metrics {
        let out = eval.evaluate_metric(metric.as_ref(), t);
        println!(
            "  {:>4}: accuracy ratio {:>8.1}  (absolute {:.2}% of k={})",
            out.metric,
            out.accuracy_ratio,
            out.absolute_accuracy * 100.0,
            out.k
        );
    }

    // 4. Add the paper's temporal filter and watch the ratios move (§6.2).
    let filter = TemporalFilter::new(FilterThresholds::renren());
    println!("\nwith the Table 7 renren filter:");
    let refs: Vec<&dyn Metric> = metrics.iter().map(|m| m.as_ref()).collect();
    for out in eval.evaluate_metrics_at(&refs, t, Some(&filter)) {
        println!("  {:>4}: accuracy ratio {:>8.1}", out.metric, out.accuracy_ratio);
    }
}
