//! Temporal filtering walkthrough (§6): measure the idle-time /
//! recent-edge / CN-gap separations on your own trace, *discover* filter
//! thresholds from them, and quantify how much the filter shrinks the
//! candidate space and lifts prediction accuracy.
//!
//! ```sh
//! cargo run --release --example temporal_filtering
//! ```

use linklens::core::temporal::{fraction_below, pair_features, positive_negative_pairs};
use linklens::graph::DAY;
use linklens::prelude::*;

fn main() {
    let config = TraceConfig::renren_like().scaled(0.1).with_days(60);
    let trace = config.generate(31);
    let seq = SnapshotSequence::with_count(&trace, 8);
    let t = seq.len() - 2;
    let snap = seq.snapshot(t - 1);
    println!("{}: transition {t}, observed snapshot has {} edges", config.name, snap.edge_count());

    // 1. Reproduce the §6.1 measurement: positives vs negatives.
    let (pos, neg) = positive_negative_pairs(&seq, t, 2000, 9);
    let idle = |pairs: &[(NodeId, NodeId)]| -> Vec<f64> {
        pairs.iter().map(|&(u, v)| pair_features(&snap, u, v, 7 * DAY).active_idle_days).collect()
    };
    let (pi, ni) = (idle(&pos), idle(&neg));
    println!(
        "active-node idle < 3 days: positives {:.0}%, negatives {:.0}%",
        fraction_below(&pi, 3.0) * 100.0,
        fraction_below(&ni, 3.0) * 100.0
    );

    // 2. Discover thresholds from the positives (the paper's methodology,
    //    generalized) and compare with the hand-tuned Table 7 row.
    let discovered = FilterThresholds::discover(&snap, &pos, 7.0);
    println!("\ndiscovered thresholds: {discovered:?}");
    println!("table 7 (renren):      {:?}", FilterThresholds::renren());

    // 3. Quantify the search-space reduction and the accuracy lift.
    let eval = SequenceEvaluator::new(&seq);
    let bra = BayesResourceAllocation;
    for (label, filter) in [
        ("no filter", None),
        ("discovered", Some(TemporalFilter::new(discovered))),
        ("table 7", Some(TemporalFilter::new(FilterThresholds::renren()))),
    ] {
        let cands = eval.candidates_for(&snap, &[&bra], filter.as_ref());
        let out = eval.evaluate_metrics_at(&[&bra], t, filter.as_ref());
        println!(
            "{label:>11}: {:>8} candidates, BRA accuracy ratio {:>8.1}",
            cands.len(),
            out[0].accuracy_ratio
        );
    }
}
